"""Adaptive shot allocation and rare-event estimation for low-LER sweeps.

ROADMAP item 3: Fig-14b-style points at ``p = 1e-4`` burn millions of shots
for a handful of logical failures.  This module provides the two statistical
tools that make the deep sub-threshold regime a first-class workload:

Sequential stopping rule
------------------------
:class:`AdaptiveConfig` describes a per-job stopping target: keep dispatching
chunks only until the Wilson interval on the job's logical error rate is
tighter than an absolute (or relative) half-width.  The rule composes with
the Section 6 seed discipline for free — chunk ``c`` of a job draws from the
position-keyed stream ``(job, c)`` no matter how many chunks end up running,
so a truncated run is *bit-identical* to the prefix of a fixed run, and the
executor caches it under that prefix job's content address.  Driving the
rule off the Wilson half-width (not the plug-in stderr, which collapses to
``0.0`` at zero failures) means a job that has seen no logical error is
never declared "resolved" prematurely: at zero failures the half-width is
still roughly ``1.92 / (shots + 3.84)`` (rule of three).

The knobs ride on :class:`~repro.experiments.jobs.SweepJob` as perf-only
fields (``target_ci_halfwidth``, ``target_rel_halfwidth``,
``adaptive_min_chunks``) excluded from cache identity, exactly like
``decoder_artifact_dir``: they change how much of the job runs, never the
content of any statistic.

Rare-event estimator
--------------------
:class:`RareEventSampler` estimates the deep tail by importance sampling
over the error-count-conditioned ensemble of a phenomenological noise model:
sample shots conditioned on at least ``k`` physical error events (via the
packed engine's exact sparse samplers), evaluate failures through a
precomputed single-fault signature table (Pauli-frame linearity: the
detector pattern of a multi-error set is the XOR of single-fault
signatures), and reweight by the exact binomial tail ``P(K >= k)``.  With
``k = (d+1)//2`` the estimator is *exactly* unbiased: minimum-weight
matching corrects every error set of weight ``<= (d-1)//2``, so the
discarded low-count strata contribute zero failures by construction.
:func:`cross_check` verifies the estimator against direct sampling in the
overlap region where both are tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes import DEFAULT_CODE_FAMILY, make_code
from repro.codes.layout import StabilizerType
from repro.core.qsg import KEY_FINAL_DATA, QecScheduleGenerator
from repro.experiments.jobs import SweepJob, SweepPlan
from repro.experiments.metrics import wilson_halfwidth, wilson_interval
from repro.noise.leakage import LeakageModel
from repro.noise.model import NoiseParams
from repro.sim.frame_simulator import LeakageFrameSimulator
from repro.sim.packed_bits import sample_cells, sample_distinct

#: Chunks the stopping rule must observe before it may stop a job.  Two is
#: the smallest count that lets the truncation property be non-trivial (a
#: one-chunk stop is indistinguishable from not having started).
DEFAULT_MIN_CHUNKS = 2

#: Default z-score of the stopping rule's Wilson interval (95%).
DEFAULT_Z = 1.96


# ----------------------------------------------------------------------
# Sequential stopping rule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveConfig:
    """A per-job sequential stopping target.

    Attributes:
        target_ci_halfwidth: Stop once the Wilson half-width on the job's
            LER is ``<=`` this absolute value (``None`` = no absolute target).
        target_rel_halfwidth: Stop once the half-width is ``<= target *
            LER-hat`` (``None`` = no relative target).  Only meaningful once
            at least one failure was observed — a zero-failure job can never
            satisfy a relative target, by design.
        min_chunks: Chunks that must complete before the rule may stop.
        z: z-score of the Wilson interval driving the rule.

    Either target being met stops the job (OR semantics).
    """

    target_ci_halfwidth: Optional[float] = None
    target_rel_halfwidth: Optional[float] = None
    min_chunks: int = DEFAULT_MIN_CHUNKS
    z: float = DEFAULT_Z

    def __post_init__(self) -> None:
        for name in ("target_ci_halfwidth", "target_rel_halfwidth"):
            value = getattr(self, name)
            if value is not None and not value > 0.0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.min_chunks < 1:
            raise ValueError(f"min_chunks must be >= 1, got {self.min_chunks}")

    @property
    def enabled(self) -> bool:
        """Whether any stopping target is configured."""
        return (
            self.target_ci_halfwidth is not None
            or self.target_rel_halfwidth is not None
        )

    def halfwidth(self, logical_errors: int, shots: int) -> float:
        """The Wilson half-width the rule evaluates (the per-job gauge)."""
        return wilson_halfwidth(logical_errors, shots, z=self.z)

    def satisfied(self, logical_errors: int, shots: int) -> bool:
        """Whether the interval on ``logical_errors / shots`` is tight enough.

        ``logical_errors < 0`` (decoding disabled) never satisfies: there is
        no LER to resolve, so such jobs always run to completion.
        """
        if not self.enabled or shots <= 0 or logical_errors < 0:
            return False
        halfwidth = self.halfwidth(logical_errors, shots)
        if halfwidth != halfwidth:  # NaN guard
            return False
        if (
            self.target_ci_halfwidth is not None
            and halfwidth <= self.target_ci_halfwidth
        ):
            return True
        if self.target_rel_halfwidth is not None and logical_errors > 0:
            rate = logical_errors / shots
            if halfwidth <= self.target_rel_halfwidth * rate:
                return True
        return False


def job_adaptive_config(job: SweepJob) -> Optional[AdaptiveConfig]:
    """The stopping rule a job carries, or ``None`` when it has no target."""
    if job.target_ci_halfwidth is None and job.target_rel_halfwidth is None:
        return None
    return AdaptiveConfig(
        target_ci_halfwidth=job.target_ci_halfwidth,
        target_rel_halfwidth=job.target_rel_halfwidth,
        min_chunks=(
            DEFAULT_MIN_CHUNKS
            if job.adaptive_min_chunks is None
            else job.adaptive_min_chunks
        ),
    )


def apply_adaptive(plan: SweepPlan, config: Optional[AdaptiveConfig]) -> SweepPlan:
    """Give every decode job of ``plan`` the stopping rule's targets.

    Jobs that already carry their own target keep it; non-decode jobs are
    left untouched (they have no LER to resolve); ``None`` or a disabled
    config returns the plan unchanged.  Mirrors
    :func:`~repro.experiments.executor.apply_decoder_artifact_dir` — the
    stamped fields are perf-only and do not change any job's cache identity.
    """
    if config is None or not config.enabled:
        return plan
    stamped = []
    for job in plan.jobs:
        if not job.decode or job.target_ci_halfwidth is not None or (
            job.target_rel_halfwidth is not None
        ):
            stamped.append(job)
        else:
            stamped.append(
                replace(
                    job,
                    target_ci_halfwidth=config.target_ci_halfwidth,
                    target_rel_halfwidth=config.target_rel_halfwidth,
                    adaptive_min_chunks=config.min_chunks,
                )
            )
    return SweepPlan(stamped)


# ----------------------------------------------------------------------
# Rare-event estimation (error-count-conditioned importance sampling)
# ----------------------------------------------------------------------
def binomial_logpmf(n: int, p: float, j: int) -> float:
    """``log P(Binomial(n, p) = j)``, stable for tiny ``p`` and large ``n``."""
    if not 0 <= j <= n:
        return float("-inf")
    if p <= 0.0:
        return 0.0 if j == 0 else float("-inf")
    if p >= 1.0:
        return 0.0 if j == n else float("-inf")
    return (
        math.lgamma(n + 1)
        - math.lgamma(j + 1)
        - math.lgamma(n - j + 1)
        + j * math.log(p)
        + (n - j) * math.log1p(-p)
    )


def binomial_tail(n: int, p: float, k: int) -> float:
    """``P(Binomial(n, p) >= k)`` via direct pmf summation (exact weights)."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    # Sum ascending from k: terms decay geometrically once j >> n*p, so the
    # partial sums converge long before j reaches n for the sparse regime.
    total = 0.0
    for j in range(k, n + 1):
        term = math.exp(binomial_logpmf(n, p, j))
        total += term
        if term < 1e-18 * max(total, 1e-300) and j > n * p + 10:
            break
    return min(total, 1.0)


@dataclass
class RareEventEstimate:
    """One rare-event LER estimate with its uncertainty and provenance."""

    ler: float
    ci_low: float
    ci_high: float
    shots: int
    failures: int
    method: str
    min_events: int
    #: Importance weight ``P(K >= min_events)`` (``1.0`` for direct sampling).
    weight: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "ler": self.ler,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "shots": self.shots,
            "failures": self.failures,
            "method": self.method,
            "min_events": self.min_events,
            "weight": self.weight,
        }


class RareEventSampler:
    """Phenomenological failure model with exact conditioned sampling.

    The model: independent X errors land on data qubits just before each
    syndrome-extraction round with probability ``p`` per (round, qubit) cell;
    measurements are noiseless.  Failures are evaluated through a
    precomputed *single-fault signature table* — one noiseless frame-
    simulator run per cell records the detector pattern and observable flip
    of that fault, and Pauli-frame linearity makes any multi-error shot the
    XOR of its cells' signatures — so per-shot cost is a sparse XOR plus one
    decoder call, independent of ``p``.

    Three estimators share the machinery:

    * :meth:`direct` — plain Monte-Carlo over the unconditioned ensemble
      (exact sparse Bernoulli sampling via ``sample_cells``);
    * :meth:`conditioned` — importance sampling over the ensemble
      conditioned on at least ``k`` error events, reweighted by the exact
      binomial tail ``P(K >= k)``;
    * :meth:`stratified` — multilevel splitting over exact-count strata
      ``K = k, k+1, ...``, each estimated independently and recombined with
      exact binomial weights (a conservative tail term covers the truncated
      strata).

    With ``k = (d+1)//2`` (the default) the conditioned estimators are
    exactly unbiased: MWPM corrects every error set of weight ``<=
    (d-1)//2``, so every discarded low-count shot is a guaranteed success.
    """

    def __init__(
        self,
        distance: int,
        rounds: int,
        p: float,
        code_family: str = DEFAULT_CODE_FAMILY,
        decoder_method: str = "mwpm",
    ) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        from repro.decoder.decoder import SurfaceCodeDecoder

        self.distance = int(distance)
        self.rounds = int(rounds)
        self.p = float(p)
        self.code_family = code_family
        self.code = make_code(code_family, distance)
        self.decoder = SurfaceCodeDecoder(
            code=self.code,
            num_rounds=self.rounds,
            stabilizer_type=StabilizerType.Z,
            method=decoder_method,
        )
        self._qsg = QecScheduleGenerator(self.code)
        self._build_signature_table()

    # -- signature table ------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Error cells per shot: one per (round, data qubit)."""
        return self.rounds * len(self._data_qubits)

    @property
    def min_events(self) -> int:
        """Smallest error count that can possibly defeat the decoder.

        MWPM corrects every error set of weight ``<= (d-1)//2``, so shots
        with fewer events than this are guaranteed successes and the
        conditioned ensemble may skip them without bias.
        """
        return (self.distance + 1) // 2

    def _noiseless_run(
        self, faults: Sequence[Tuple[int, int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Syndrome history + final bits with X frames injected at ``faults``.

        ``faults`` holds ``(round, data_qubit)`` pairs; each X frame is
        flipped just before its round executes, mirroring
        :class:`~repro.decoder.fault_injection.FaultInjector`.
        """
        sim = LeakageFrameSimulator(
            self.code.num_qubits, NoiseParams.noiseless(), LeakageModel.disabled(), rng=0
        )
        by_round: Dict[int, List[int]] = {}
        for round_index, qubit in faults:
            by_round.setdefault(int(round_index), []).append(int(qubit))
        history = np.zeros((self.rounds, self.code.num_stabilizers), dtype=np.uint8)
        for round_index in range(self.rounds):
            for qubit in by_round.get(round_index, ()):
                sim.x[qubit] ^= True
            ops, layout = self._qsg.build_round({})
            records = sim.run(ops)
            bits, _, _ = self._qsg.assemble_syndrome(records, layout)
            history[round_index] = bits
        records = sim.run(self._qsg.build_final_data_measurement())
        return history, records[KEY_FINAL_DATA].bits

    def _build_signature_table(self) -> None:
        """One noiseless run per (round, qubit) cell -> detector/observable XOR basis."""
        self._data_qubits = list(self.code.data_indices)
        layers = self.rounds + 1
        checks = self.decoder.graph.num_checks
        cells = self.num_cells
        self._det_table = np.zeros((cells, layers * checks), dtype=np.uint8)
        self._obs_table = np.zeros(cells, dtype=np.uint8)
        for round_index in range(self.rounds):
            for qubit_pos, qubit in enumerate(self._data_qubits):
                cell = round_index * len(self._data_qubits) + qubit_pos
                history, final_bits = self._noiseless_run([(round_index, qubit)])
                detectors = self.decoder.build_detectors(history, final_bits)
                self._det_table[cell] = detectors.reshape(-1).astype(np.uint8)
                self._obs_table[cell] = self.decoder.observed_logical_flip(final_bits)

    # -- failure evaluation ---------------------------------------------
    def failures_for_cells(
        self, shots: int, shot_rows: np.ndarray, cell_cols: np.ndarray
    ) -> np.ndarray:
        """Per-shot failure flags for sparse (shot, cell) error placements.

        Detector patterns and observable flips accumulate by XOR over each
        shot's cells (Pauli-frame linearity), then the decoder's batched
        correction path predicts the logical flip per shot.
        """
        layers = self.rounds + 1
        checks = self.decoder.graph.num_checks
        detectors = np.zeros((shots, layers * checks), dtype=np.uint8)
        observed = np.zeros(shots, dtype=np.uint8)
        if shot_rows.size:
            np.bitwise_xor.at(detectors, shot_rows, self._det_table[cell_cols])
            np.bitwise_xor.at(observed, shot_rows, self._obs_table[cell_cols])
        predicted = self.decoder.predict_corrections_batch(
            detectors.reshape(shots, layers, checks).astype(bool)
        )
        return (predicted.astype(np.uint8) ^ observed).astype(bool)

    # -- estimators ------------------------------------------------------
    def direct(self, shots: int, seed=None) -> RareEventEstimate:
        """Plain Monte-Carlo over the unconditioned ensemble."""
        rng = np.random.default_rng(seed)
        rows, cols = sample_cells(rng, shots, self.num_cells, self.p)
        failures = int(self.failures_for_cells(shots, rows, cols).sum())
        low, high = wilson_interval(failures, shots)
        return RareEventEstimate(
            ler=failures / shots,
            ci_low=low,
            ci_high=high,
            shots=shots,
            failures=failures,
            method="direct",
            min_events=0,
            weight=1.0,
        )

    def _conditional_count_sampler(self, k: int):
        """Inverse-CDF sampler for ``K ~ Binomial(N, p) | K >= k``."""
        n = self.num_cells
        tail = binomial_tail(n, self.p, k)
        if tail <= 0.0:
            raise ValueError(
                f"P(K >= {k}) underflows for N={n}, p={self.p}; "
                "the conditioned ensemble is empty"
            )
        counts: List[int] = []
        cdf: List[float] = []
        cumulative = 0.0
        for j in range(k, n + 1):
            mass = math.exp(binomial_logpmf(n, self.p, j)) / tail
            cumulative += mass
            counts.append(j)
            cdf.append(cumulative)
            if cumulative >= 1.0 - 1e-12:
                break
        cdf[-1] = 1.0
        cdf_array = np.asarray(cdf)
        counts_array = np.asarray(counts)

        def draw(rng: np.random.Generator, size: int) -> np.ndarray:
            return counts_array[np.searchsorted(cdf_array, rng.random(size))]

        return draw, tail

    def conditioned(
        self, shots: int, seed=None, min_events: Optional[int] = None
    ) -> RareEventEstimate:
        """Importance sampling conditioned on at least ``k`` error events.

        ``LER = P(K >= k) * E[failure | K >= k]``; the first factor is an
        exact binomial tail and the second a conditional Monte-Carlo mean,
        so the Wilson interval on the conditional mean scales directly by
        the (exact) weight.
        """
        k = self.min_events if min_events is None else int(min_events)
        rng = np.random.default_rng(seed)
        draw, weight = self._conditional_count_sampler(k)
        counts = draw(rng, shots)
        rows = np.repeat(np.arange(shots, dtype=np.int64), counts)
        cols = np.concatenate(
            [sample_distinct(rng, self.num_cells, int(j)) for j in counts]
        ) if shots else np.empty(0, dtype=np.int64)
        failures = int(self.failures_for_cells(shots, rows, cols).sum())
        low, high = wilson_interval(failures, shots)
        return RareEventEstimate(
            ler=weight * failures / shots,
            ci_low=weight * low,
            ci_high=weight * high,
            shots=shots,
            failures=failures,
            method="conditioned",
            min_events=k,
            weight=weight,
        )

    def stratified(
        self,
        shots: int,
        seed=None,
        min_events: Optional[int] = None,
        min_stratum_shots: int = 32,
    ) -> RareEventEstimate:
        """Multilevel splitting over exact-count strata ``K = k, k+1, ...``.

        Shots are allocated across strata proportionally to each stratum's
        exact binomial weight (never below ``min_stratum_shots``), each
        stratum's conditional failure rate is estimated independently, and
        the estimates recombine as ``sum_j P(K = j) * f_j``.  Strata beyond
        the retained range contribute their full weight to the upper bound
        (conservative: as if every such shot failed).
        """
        k = self.min_events if min_events is None else int(min_events)
        rng = np.random.default_rng(seed)
        n = self.num_cells
        tail = binomial_tail(n, self.p, k)
        # Retain strata covering all but a vanishing fraction of the tail.
        strata: List[Tuple[int, float]] = []
        cumulative = 0.0
        for j in range(k, n + 1):
            mass = math.exp(binomial_logpmf(n, self.p, j))
            strata.append((j, mass))
            cumulative += mass
            if tail - cumulative <= 1e-6 * tail:
                break
        truncated_weight = max(tail - cumulative, 0.0)
        total_mass = sum(mass for _, mass in strata)
        ler = 0.0
        ci_low = 0.0
        ci_high = truncated_weight
        total_shots = 0
        total_failures = 0
        for j, mass in strata:
            stratum_shots = max(
                min_stratum_shots, int(round(shots * mass / total_mass))
            )
            cols = np.concatenate(
                [sample_distinct(rng, n, j) for _ in range(stratum_shots)]
            )
            rows = np.repeat(np.arange(stratum_shots, dtype=np.int64), j)
            failures = int(
                self.failures_for_cells(stratum_shots, rows, cols).sum()
            )
            low, high = wilson_interval(failures, stratum_shots)
            ler += mass * failures / stratum_shots
            ci_low += mass * low
            ci_high += mass * high
            total_shots += stratum_shots
            total_failures += failures
        return RareEventEstimate(
            ler=ler,
            ci_low=ci_low,
            ci_high=ci_high,
            shots=total_shots,
            failures=total_failures,
            method="stratified",
            min_events=k,
            weight=tail,
        )


def intervals_overlap(
    a: Tuple[float, float], b: Tuple[float, float]
) -> bool:
    """Whether two ``(low, high)`` intervals share any point (NaN = False)."""
    if any(v != v for v in (*a, *b)):
        return False
    return a[0] <= b[1] and b[0] <= a[1]


def cross_check(
    sampler: RareEventSampler,
    direct_shots: int,
    conditioned_shots: int,
    seed: int = 0,
) -> Dict[str, object]:
    """Unbiasedness cross-check: conditioned vs direct in the overlap region.

    Runs both estimators on the same model (independent streams) and reports
    whether their Wilson intervals overlap — the acceptance gate used by the
    adaptive benchmark and the test suite.  Run it at a ``p`` where direct
    sampling still resolves the LER; the conditioned estimator's weights do
    not change with ``p``, so agreement here transfers to the deep tail.
    """
    direct = sampler.direct(direct_shots, seed=seed)
    conditioned = sampler.conditioned(conditioned_shots, seed=seed + 1)
    return {
        "direct": direct.to_dict(),
        "conditioned": conditioned.to_dict(),
        "overlap": intervals_overlap(
            (direct.ci_low, direct.ci_high),
            (conditioned.ci_low, conditioned.ci_high),
        ),
    }
