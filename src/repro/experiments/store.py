"""Content-addressed on-disk store for memory-experiment results.

Infrastructure for the Section 6 Monte-Carlo evaluation: every figure's sweep
persists its finished jobs here, which is what makes reproduction runs
resumable and report rebuilds simulation-free.

Every :class:`~repro.experiments.jobs.SweepJob` is fully described by a plain
configuration dictionary — including its seed material (plan entropy plus the
job's spawn key) — so the result of running it is addressed by the SHA-256
hash of that dictionary's canonical JSON form.  A sweep pointed at a cache
directory can therefore skip every configuration it has already computed,
across processes and across invocations.  Because the spawn key encodes the
job's position in its plan, reuse requires rebuilding the same plan (or a
plan whose leading jobs match) with the same explicit seed; a sweep that
shuffles its grid or draws fresh entropy addresses different entries.

Each entry is a pair of files under the store root::

    <hash>.npz    per-round LPR arrays (written first)
    <hash>.json   scalar statistics + the originating config (written last)

Both files are written atomically (temp file + ``os.replace``) and the JSON
file acts as the commit marker: an entry is complete only when its JSON file
parses and its arrays load.  :meth:`ResultStore.load` treats missing, torn, or
corrupt entries as cache misses, which is what makes interrupted sweeps safely
resumable — rerunning the sweep recomputes exactly the incomplete entries.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Iterator, Optional

import numpy as np

from repro.experiments.results import MemoryExperimentResult

#: Bump when the on-disk layout changes; mismatched entries read as misses.
STORE_FORMAT_VERSION = 1

#: Directory used when a sweep asks for resumption without naming a cache.
DEFAULT_CACHE_DIR = ".eraser-repro-cache"


def default_cache_dir() -> str:
    """The cache directory implied by ``resume`` without an explicit path."""
    return os.environ.get("ERASER_REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def canonical_config_json(config: Dict[str, object]) -> str:
    """Canonical JSON form of a job configuration (sorted keys, no spaces)."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def config_hash(config: Dict[str, object]) -> str:
    """SHA-256 content address of a job configuration.

    Stable across processes and platforms: the hash covers the canonical JSON
    of the configuration, which contains only primitives (including the
    derived seed material), never object identities.
    """
    return hashlib.sha256(canonical_config_json(config).encode("utf-8")).hexdigest()


class ResultStore:
    """Filesystem-backed map from config hash to saved experiment result."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def contains(self, key: str) -> bool:
        """Whether a *complete* entry exists for ``key``."""
        return self.load(key) is not None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def keys(self) -> Iterator[str]:
        """Hashes of every committed (JSON-present) entry."""
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=f".{path.stem}-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def save(
        self,
        key: str,
        result: MemoryExperimentResult,
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        """Persist ``result`` under ``key`` (arrays first, JSON as commit)."""
        scalars, arrays = result.to_state()
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        self._atomic_write(self.npz_path(key), buffer.getvalue())
        payload = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "config": config,
            "result": scalars,
        }
        self._atomic_write(
            self.json_path(key), json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        )

    def load(self, key: str) -> Optional[MemoryExperimentResult]:
        """Return the stored result, or ``None`` for missing/torn entries."""
        try:
            with open(self.json_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != STORE_FORMAT_VERSION:
                return None
            scalars = payload["result"]
            with np.load(self.npz_path(key)) as archive:
                arrays = {name: archive[name] for name in archive.files}
            return MemoryExperimentResult.from_state(scalars, arrays)
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError, zipfile.BadZipFile):
            return None

    def remove(self, key: str) -> None:
        """Delete an entry (JSON first so readers never see a torn commit)."""
        for path in (self.json_path(key), self.npz_path(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


class InMemoryResultStore:
    """Process-local result store with the same save/load protocol.

    Used when no cache directory is configured (e.g. a plain
    ``eraser-repro report`` run) so that identical jobs appearing in several
    sweeps of one process — Figure 14's grid reappearing as Table 4, Figure
    5's trace inside Figures 15/16 — are still simulated only once.  Nothing
    touches disk and nothing survives the process.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, MemoryExperimentResult] = {}

    def save(
        self,
        key: str,
        result: MemoryExperimentResult,
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        self._entries[key] = result

    def load(self, key: str) -> Optional[MemoryExperimentResult]:
        return self._entries.get(key)

    def contains(self, key: str) -> bool:
        return key in self._entries

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self._entries)
