"""Content-addressed on-disk store for memory-experiment results.

Infrastructure for the Section 6 Monte-Carlo evaluation: every figure's sweep
persists its finished jobs here, which is what makes reproduction runs
resumable and report rebuilds simulation-free.

Every :class:`~repro.experiments.jobs.SweepJob` is fully described by a plain
configuration dictionary — including its seed material (plan entropy plus the
job's spawn key) — so the result of running it is addressed by the SHA-256
hash of that dictionary's canonical JSON form.  A sweep pointed at a cache
directory can therefore skip every configuration it has already computed,
across processes and across invocations.  Because the spawn key encodes the
job's position in its plan, reuse requires rebuilding the same plan (or a
plan whose leading jobs match) with the same explicit seed; a sweep that
shuffles its grid or draws fresh entropy addresses different entries.

Each entry is a pair of files under the store root::

    <hash>.npz    per-round LPR arrays (written first)
    <hash>.json   scalar statistics + the originating config (written last)

Both files are written atomically (temp file + ``fsync`` + ``os.replace``)
and the JSON file acts as the commit marker: an entry is complete only when
its JSON file parses and its arrays load.  The ``fsync`` before the rename
matters: without it a hard kill (power loss, ``SIGKILL`` plus an unlucky
page-cache flush) could leave a *renamed but empty* entry — the name commits
before the bytes — which would then parse as corrupt forever.  With it, a
rename only ever publishes fully-durable bytes.  :meth:`ResultStore.load`
treats missing, torn, or corrupt entries as cache misses, which is what makes
interrupted sweeps safely resumable — rerunning the sweep recomputes exactly
the incomplete entries.

Sharding (the sweep-service layout)
-----------------------------------
A store created with ``shards=N > 1`` partitions entries into ``N`` shard
directories (``shard-000/`` ... keyed by the leading bits of the SHA-256
hash) so that many concurrent writer processes never contend on one
directory's dirent lock.  The shard count is recorded in a
``.store-meta.json`` marker so every later open agrees on the layout.
Reads fall through to the flat layout per file, so a flat store opened
sharded keeps serving its old entries, and :meth:`migrate_flat_entries`
moves them into their shard directories with the same atomic-rename
semantics (a reader racing the migration sees each entry in one place or
the other, never torn).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.experiments.results import MemoryExperimentResult

#: Bump when the on-disk layout changes; mismatched entries read as misses.
STORE_FORMAT_VERSION = 1

#: Directory used when a sweep asks for resumption without naming a cache.
DEFAULT_CACHE_DIR = ".eraser-repro-cache"

#: Layout marker recording the shard count (hidden: never globbed as an entry).
STORE_META_FILE = ".store-meta.json"

#: Shard count the sweep service uses for its shared store.
DEFAULT_SERVICE_SHARDS = 16


def default_cache_dir() -> str:
    """The cache directory implied by ``resume`` without an explicit path."""
    return os.environ.get("ERASER_REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def canonical_config_json(config: Dict[str, object]) -> str:
    """Canonical JSON form of a job configuration (sorted keys, no spaces)."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def config_hash(config: Dict[str, object]) -> str:
    """SHA-256 content address of a job configuration.

    Stable across processes and platforms: the hash covers the canonical JSON
    of the configuration, which contains only primitives (including the
    derived seed material), never object identities.
    """
    return hashlib.sha256(canonical_config_json(config).encode("utf-8")).hexdigest()


class ResultStore:
    """Filesystem-backed map from config hash to saved experiment result.

    Args:
        root: Store directory (created if missing).
        shards: Number of shard directories.  ``None`` adopts whatever the
            store's ``.store-meta.json`` marker records (``1`` — the flat
            legacy layout — when the marker is absent).  An explicit value
            that contradicts an existing marker raises, so concurrent
            openers can never disagree on where a key lives.
    """

    def __init__(self, root, shards: Optional[int] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        recorded = self._read_meta()
        if shards is None:
            shards = recorded if recorded is not None else 1
        shards = int(shards)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if recorded is not None and recorded != shards:
            raise ValueError(
                f"store at {self.root} is laid out with {recorded} shard(s); "
                f"reopen it with shards={recorded} (or shards=None)"
            )
        self.shards = shards
        if self.shards > 1 and recorded is None:
            self._write_meta()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.root / STORE_META_FILE

    def _read_meta(self) -> Optional[int]:
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            return int(meta["shards"])
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None

    def _write_meta(self) -> None:
        payload = {"format": STORE_FORMAT_VERSION, "shards": self.shards}
        self._atomic_write(
            self._meta_path(), json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    def shard_index(self, key: str) -> int:
        """Which shard ``key`` lives in (leading hash bits modulo the count)."""
        return int(key[:8], 16) % self.shards

    def shard_dir(self, key: str) -> Path:
        """The directory holding ``key`` (the root itself for flat stores)."""
        if self.shards == 1:
            return self.root
        return self.root / f"shard-{self.shard_index(key):03d}"

    def shard_dirs(self) -> List[Path]:
        """Every shard directory (flat stores: just the root)."""
        if self.shards == 1:
            return [self.root]
        return [self.root / f"shard-{index:03d}" for index in range(self.shards)]

    def json_path(self, key: str) -> Path:
        return self.shard_dir(key) / f"{key}.json"

    def npz_path(self, key: str) -> Path:
        return self.shard_dir(key) / f"{key}.npz"

    def _fallback_path(self, path: Path) -> Optional[Path]:
        """The flat-layout location of a sharded entry (read-through)."""
        if self.shards == 1 or path.parent == self.root:
            return None
        return self.root / path.name

    def contains(self, key: str) -> bool:
        """Whether a *complete* entry exists for ``key``."""
        return self.load(key) is not None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    @staticmethod
    def _is_entry_key(stem: str) -> bool:
        """Whether a file stem names an entry (vs dot-prefixed meta/temp files)."""
        return bool(stem) and not stem.startswith(".")

    @staticmethod
    def _is_shardable_key(stem: str) -> bool:
        """Whether a key carries the hash prefix shard assignment needs."""
        return len(stem) >= 8 and all(c in "0123456789abcdef" for c in stem[:8])

    def keys(self) -> Iterator[str]:
        """Hashes of every committed (JSON-present) entry."""
        seen = set()
        directories = self.shard_dirs()
        if self.shards > 1:
            directories.append(self.root)  # flat entries awaiting migration
        for directory in directories:
            if not directory.is_dir():
                continue
            for path in directory.glob("*.json"):
                if self._is_entry_key(path.stem):
                    seen.add(path.stem)
        yield from sorted(seen)

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Durable atomic publish: write + flush + fsync, then rename.

        The fsync *before* ``os.replace`` is load-bearing: renames can hit
        the journal before data pages do, so skipping it lets a hard kill
        publish an entry whose name is durable but whose bytes are not —
        a renamed-but-empty file that would read as corrupt forever.
        """
        directory = path.parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=f".{path.stem}-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._fsync_dir(directory)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Make a rename itself durable (best-effort on exotic filesystems)."""
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def save(
        self,
        key: str,
        result: MemoryExperimentResult,
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        """Persist ``result`` under ``key`` (arrays first, JSON as commit)."""
        scalars, arrays = result.to_state()
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        self._atomic_write(self.npz_path(key), buffer.getvalue())
        payload = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "config": config,
            "result": scalars,
        }
        self._atomic_write(
            self.json_path(key), json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        )

    def _open_entry_file(self, path: Path):
        """Open a sharded entry file, falling back to its flat location."""
        try:
            return open(path, "rb")
        except FileNotFoundError:
            fallback = self._fallback_path(path)
            if fallback is None:
                raise
            return open(fallback, "rb")

    def load(self, key: str) -> Optional[MemoryExperimentResult]:
        """Return the stored result, or ``None`` for missing/torn entries.

        Each of the entry's two files is looked up in its shard directory
        first and in the flat root second, so reads stay correct while a
        flat store migrates (or is simply reopened sharded).
        """
        try:
            with self._open_entry_file(self.json_path(key)) as handle:
                payload = json.load(handle)
            if payload.get("format") != STORE_FORMAT_VERSION:
                return None
            scalars = payload["result"]
            with self._open_entry_file(self.npz_path(key)) as handle:
                with np.load(handle) as archive:
                    arrays = {name: archive[name] for name in archive.files}
            return MemoryExperimentResult.from_state(scalars, arrays)
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError, zipfile.BadZipFile):
            return None

    def remove(self, key: str) -> None:
        """Delete an entry (JSON first so readers never see a torn commit)."""
        for path in (self.json_path(key), self.npz_path(key)):
            for location in (path, self._fallback_path(path)):
                if location is None:
                    continue
                try:
                    location.unlink()
                except FileNotFoundError:
                    pass

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate_flat_entries(self) -> int:
        """Move flat-layout entries into their shard directories.

        Returns the number of entries moved.  Both files move by atomic
        rename — arrays first, JSON (the commit marker) last — and the
        per-file flat fallback in :meth:`load` keeps concurrent readers
        correct at every intermediate state.  A no-op for flat stores.
        """
        if self.shards == 1:
            return 0
        moved = 0
        for path in sorted(self.root.glob("*.json")):
            key = path.stem
            if not self._is_entry_key(key) or not self._is_shardable_key(key):
                continue
            flat_npz = self.root / f"{key}.npz"
            self.shard_dir(key).mkdir(parents=True, exist_ok=True)
            try:
                if flat_npz.exists():
                    os.replace(flat_npz, self.npz_path(key))
                os.replace(path, self.json_path(key))
            except OSError:
                continue
            moved += 1
        return moved


class InMemoryResultStore:
    """Process-local result store with the same save/load protocol.

    Used when no cache directory is configured (e.g. a plain
    ``eraser-repro report`` run) so that identical jobs appearing in several
    sweeps of one process — Figure 14's grid reappearing as Table 4, Figure
    5's trace inside Figures 15/16 — are still simulated only once.  Nothing
    touches disk and nothing survives the process.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, MemoryExperimentResult] = {}

    def save(
        self,
        key: str,
        result: MemoryExperimentResult,
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        self._entries[key] = result

    def load(self, key: str) -> Optional[MemoryExperimentResult]:
        return self._entries.get(key)

    def contains(self, key: str) -> bool:
        return key in self._entries

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self._entries)
