"""Evaluation metrics.

The paper evaluates scheduling policies with:

* the logical error rate (LER), Equation (4);
* the leakage population ratio (LPR), Equation (5);
* LRC speculation accuracy with its false-positive and false-negative rates
  (Figure 16); and
* the average number of LRCs scheduled per round (Table 4).

This module provides the counting containers and simple statistics used for
all of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass
class SpeculationCounts:
    """Confusion-matrix counts for per-round, per-data-qubit LRC decisions.

    A *positive* decision means "schedule an LRC for this data qubit in this
    round"; the ground truth is whether the qubit was actually leaked when the
    round began.
    """

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    def update(self, tp: int, fp: int, tn: int, fn: int) -> None:
        self.true_positive += int(tp)
        self.false_positive += int(fp)
        self.true_negative += int(tn)
        self.false_negative += int(fn)

    def merge(self, other: "SpeculationCounts") -> "SpeculationCounts":
        return SpeculationCounts(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.true_negative + other.true_negative,
            self.false_negative + other.false_negative,
        )

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        """Fraction of decisions that were correct (Figure 16, top)."""
        if self.total == 0:
            return float("nan")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN): LRCs scheduled on qubits that were not leaked."""
        denom = self.false_positive + self.true_negative
        if denom == 0:
            return float("nan")
        return self.false_positive / denom

    @property
    def false_negative_rate(self) -> float:
        """FN / (FN + TP): leaked qubits that did not receive an LRC."""
        denom = self.false_negative + self.true_positive
        if denom == 0:
            return float("nan")
        return self.false_negative / denom

    @property
    def true_positive_rate(self) -> float:
        denom = self.false_negative + self.true_positive
        if denom == 0:
            return float("nan")
        return self.true_positive / denom


def binomial_stderr(successes: int, trials: int) -> float:
    """Standard error of a binomial proportion estimate."""
    if trials <= 0:
        return float("nan")
    rate = successes / trials
    return math.sqrt(max(rate * (1.0 - rate), 0.0) / trials)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        return (float("nan"), float("nan"))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt((phat * (1.0 - phat) + z * z / (4 * trials)) / trials)
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    return (low, high)


def improvement_factor(baseline: float, improved: float) -> float:
    """Multiplicative improvement ``baseline / improved`` (paper's "Nx better")."""
    if improved <= 0.0:
        return float("inf")
    return baseline / improved
