"""Evaluation metrics and operational telemetry.

The paper evaluates scheduling policies with:

* the logical error rate (LER), Equation (4);
* the leakage population ratio (LPR), Equation (5);
* LRC speculation accuracy with its false-positive and false-negative rates
  (Figure 16); and
* the average number of LRCs scheduled per round (Table 4).

This module provides the counting containers and simple statistics used for
all of them, plus the :class:`MetricsRegistry` of counters, gauges and
histograms that instruments the Section 6 sweep machinery — the executor
counts chunks executed versus served from cache, and the sweep service
(:mod:`repro.service`) snapshots the same registry over its API and streams
it as NDJSON for live dashboards.  Snapshots are canonical (sorted keys,
compact separators) so that serialising, parsing and re-serialising a
snapshot is byte-stable.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass
class SpeculationCounts:
    """Confusion-matrix counts for per-round, per-data-qubit LRC decisions.

    A *positive* decision means "schedule an LRC for this data qubit in this
    round"; the ground truth is whether the qubit was actually leaked when the
    round began.
    """

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    def update(self, tp: int, fp: int, tn: int, fn: int) -> None:
        self.true_positive += int(tp)
        self.false_positive += int(fp)
        self.true_negative += int(tn)
        self.false_negative += int(fn)

    def merge(self, other: "SpeculationCounts") -> "SpeculationCounts":
        return SpeculationCounts(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.true_negative + other.true_negative,
            self.false_negative + other.false_negative,
        )

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        """Fraction of decisions that were correct (Figure 16, top)."""
        if self.total == 0:
            return float("nan")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN): LRCs scheduled on qubits that were not leaked."""
        denom = self.false_positive + self.true_negative
        if denom == 0:
            return float("nan")
        return self.false_positive / denom

    @property
    def false_negative_rate(self) -> float:
        """FN / (FN + TP): leaked qubits that did not receive an LRC."""
        denom = self.false_negative + self.true_positive
        if denom == 0:
            return float("nan")
        return self.false_negative / denom

    @property
    def true_positive_rate(self) -> float:
        denom = self.false_negative + self.true_positive
        if denom == 0:
            return float("nan")
        return self.true_positive / denom


def binomial_stderr(successes: int, trials: int) -> float:
    """Standard error of a binomial proportion estimate.

    .. warning::
        The plug-in estimate degenerates at the boundary: with zero observed
        successes (or zero failures) it returns exactly ``0.0``, which is
        *not* zero uncertainty — it is the regime where the normal
        approximation breaks down entirely.  Low-LER sweep points that saw no
        logical error land exactly here, which is how reports used to render
        impossible zero-width error bars.  For honest uncertainty at the
        boundary use :func:`wilson_interval`, whose upper bound at zero
        successes stays strictly positive (the "rule of three": roughly
        ``3 / trials``).  This function is kept for backward compatibility
        and for well-populated interior points where it matches Wilson.
    """
    if trials <= 0:
        return float("nan")
    rate = successes / trials
    return math.sqrt(max(rate * (1.0 - rate), 0.0) / trials)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        return (float("nan"), float("nan"))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt((phat * (1.0 - phat) + z * z / (4 * trials)) / trials)
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    # Pin the degenerate boundaries exactly: float rounding in centre-margin
    # can otherwise leave low ~ 1e-18 above the point estimate of 0.0 (and
    # symmetrically at all-successes), breaking interval containment.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def wilson_halfwidth(successes: int, trials: int, z: float = 1.96) -> float:
    """Half the width of :func:`wilson_interval` (the stopping-rule statistic).

    Unlike :func:`binomial_stderr` this stays strictly positive at the
    boundary (zero successes out of ``n`` trials still leaves a rule-of-three
    sized upper bound), so a sequential stopping rule driven by it can never
    be fooled into declaring a zero-failure point "resolved" after one chunk.
    """
    low, high = wilson_interval(successes, trials, z=z)
    return (high - low) / 2.0


def improvement_factor(baseline: float, improved: float) -> float:
    """Multiplicative improvement ``baseline / improved`` (paper's "Nx better").

    ``0 / 0`` is undefined — two configurations that both saw zero events
    carry no evidence either way — so it returns ``nan`` rather than the
    previous (wrong) ``inf``.  A genuinely positive baseline over a zero
    improved rate is still ``inf``.
    """
    if improved <= 0.0:
        return float("nan") if baseline <= 0.0 else float("inf")
    return baseline / improved


# ----------------------------------------------------------------------
# Operational telemetry (sweep executor + sweep service)
# ----------------------------------------------------------------------

def canonical_metrics_json(payload: Dict[str, object]) -> str:
    """Canonical JSON form of a metrics payload (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: Default latency buckets (seconds) for chunk-execution histograms: log-ish
#: spacing from sub-millisecond chunks up to minute-long ones.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Snapshot key for the implicit overflow bucket of a histogram.
INF_BUCKET = "+inf"


class Counter:
    """A monotonically increasing counter (e.g. chunks executed)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge instead")
        with self._lock:
            self._value += int(amount)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways (e.g. queue depth, live workers)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed observations (e.g. per-chunk latency).

    Buckets are keyed by their *upper* bound and counted per bucket (not
    cumulatively); observations above the last bound land in the implicit
    ``+inf`` bucket.  ``count``/``sum``/``min``/``max`` are tracked exactly.
    """

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(float(b) for b in buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.name = name
        self._lock = lock
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            buckets = {
                format(bound, "g"): self._counts[i]
                for i, bound in enumerate(self.bounds)
            }
            buckets[INF_BUCKET] = self._counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }

    def restore(self, state: Dict[str, object]) -> None:
        """Overwrite this histogram's state from a :meth:`snapshot` dict."""
        with self._lock:
            buckets = dict(state["buckets"])  # type: ignore[arg-type]
            counts = [int(buckets[format(b, "g")]) for b in self.bounds]
            counts.append(int(buckets[INF_BUCKET]))
            self._counts = counts
            self._count = int(state["count"])
            self._sum = float(state["sum"])
            self._min = None if state["min"] is None else float(state["min"])
            self._max = None if state["max"] is None else float(state["max"])


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    One registry instruments a whole process: the sweep executor counts
    chunk/cache traffic into it, the scheduler adds job lifecycle and worker
    supervision metrics, and the decoder's :class:`~repro.decoder.decoder.
    DecoderStats` dispatch counters are merged in under a ``decoder_``
    prefix.  :meth:`snapshot` returns a plain-dict view whose canonical JSON
    (:func:`canonical_metrics_json`) round-trips byte-for-byte through
    :meth:`from_snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, threading.Lock())
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, threading.Lock())
            return self._gauges[name]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, threading.Lock(), buckets)
            return self._histograms[name]

    def merge_counts(self, counts: Dict[str, int], prefix: str = "") -> None:
        """Add a dict of counter increments (e.g. a ``DecoderStats`` dump)."""
        for name, value in counts.items():
            self.counter(f"{prefix}{name}").inc(int(value))

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Point-in-time plain-dict view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }

    def to_json(self) -> str:
        """Canonical JSON of :meth:`snapshot`."""
        return canonical_metrics_json(self.snapshot())

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``snapshot``."""
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            registry.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            registry.gauge(name).set(float(value))
        for name, state in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            bounds = sorted(
                float(key) for key in state["buckets"] if key != INF_BUCKET
            )
            registry.histogram(name, buckets=bounds).restore(state)
        return registry
