"""Memory-experiment harness, metrics, sweeps, and orchestration (Section 6).

Implements the paper's evaluation methodology: memory-Z experiments over the
rotated surface code, the LER/LPR/speculation metrics of Equations (4)-(5),
and the job/executor/store layers that run every figure's sweep cached and
in parallel.
"""

from repro.experiments.metrics import (
    MetricsRegistry,
    SpeculationCounts,
    binomial_stderr,
    canonical_metrics_json,
    wilson_interval,
)
from repro.experiments.results import MemoryExperimentResult, PolicySweepResult
from repro.experiments.memory import MemoryExperiment
from repro.experiments.jobs import SweepJob, SweepPlan, merge_chunk_results
from repro.experiments.store import ResultStore, config_hash
from repro.experiments.executor import SweepExecutor, SweepStats
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, get_experiment
from repro.experiments.sweep import (
    compare_policies,
    compare_policies_plan,
    ler_vs_cycles,
    ler_vs_distance,
    lpr_time_series,
    lpr_time_series_plan,
    run_single,
)

__all__ = [
    "MetricsRegistry",
    "canonical_metrics_json",
    "SpeculationCounts",
    "binomial_stderr",
    "wilson_interval",
    "MemoryExperimentResult",
    "PolicySweepResult",
    "MemoryExperiment",
    "SweepJob",
    "SweepPlan",
    "merge_chunk_results",
    "ResultStore",
    "config_hash",
    "SweepExecutor",
    "SweepStats",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "compare_policies",
    "compare_policies_plan",
    "ler_vs_cycles",
    "ler_vs_distance",
    "lpr_time_series",
    "lpr_time_series_plan",
    "run_single",
]
