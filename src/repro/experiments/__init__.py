"""Memory-experiment harness, metrics, and parameter sweeps."""

from repro.experiments.metrics import SpeculationCounts, binomial_stderr, wilson_interval
from repro.experiments.results import MemoryExperimentResult, PolicySweepResult
from repro.experiments.memory import MemoryExperiment
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, get_experiment
from repro.experiments.sweep import (
    compare_policies,
    ler_vs_cycles,
    ler_vs_distance,
    lpr_time_series,
)

__all__ = [
    "SpeculationCounts",
    "binomial_stderr",
    "wilson_interval",
    "MemoryExperimentResult",
    "PolicySweepResult",
    "MemoryExperiment",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "compare_policies",
    "ler_vs_cycles",
    "ler_vs_distance",
    "lpr_time_series",
]
