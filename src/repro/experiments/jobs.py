"""Job-based sweep planning: fully-specified, seed-stable units of work.

A sweep (LER vs distance, an LPR time series, a DQLR comparison, ...) is
*planned* before it is executed: every point of the parameter grid becomes one
:class:`SweepJob` — a frozen record of primitives that completely determines a
Monte-Carlo run, including its random stream.  Planning and execution are
separated so that the :class:`~repro.experiments.executor.SweepExecutor` can
run jobs serially or across processes, cache them content-addressed on disk,
and resume interrupted sweeps, all without changing a single statistic.

Seed discipline
---------------
A plan derives one root entropy value from the user's seed and gives job ``i``
the :class:`numpy.random.SeedSequence` spawn key ``(i,)``.  Each job further
splits its shots into fixed-size chunks, and chunk ``c`` of job ``i`` draws
from the child sequence with spawn key ``(i, c)``.  Because spawn keys are
data (not "how many times has this generator been used so far"), the stream
feeding every chunk is independent of execution order, of which worker runs
it, and of whether any other chunk ran at all: serial and parallel execution
of the same plan produce bit-identical statistics, and a cached result is
exactly the result a fresh run would have produced.

Chunking also keeps a pool busy: one huge configuration becomes many tasks
instead of serialising the sweep behind a single worker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes import DEFAULT_CODE_FAMILY, canonical_code_family, make_code
from repro.core.policies import make_policy
from repro.core.policies.base import LrcPolicy
from repro.core.qsg import PROTOCOL_SWAP
from repro.experiments.memory import MemoryExperiment
from repro.experiments.results import MemoryExperimentResult
from repro.experiments.store import config_hash
from repro.noise.leakage import LeakageModel, LeakageTransportModel
from repro.noise.model import NoiseParams
from repro.noise.profiles import NoiseProfile
from repro.sim.rng import RngLike

#: Shots per executor task unless the plan overrides it.  Small enough that a
#: four-configuration sweep still fans out across a pool, large enough that
#: per-task overhead (fork, pickle, simulator setup) stays negligible.
DEFAULT_CHUNK_SHOTS = 256


def resolve_policy(name: str, **kwargs) -> LrcPolicy:
    """Instantiate any schedulable policy, including the DQLR baseline."""
    key = name.strip().lower()
    if key == "dqlr":
        # Imported lazily: repro.dqlr.protocol itself builds on this package.
        from repro.dqlr.protocol import DqlrBaselinePolicy

        return DqlrBaselinePolicy(**kwargs)
    return make_policy(name, **kwargs)


def canonical_policy_name(name: str) -> str:
    """The canonical name a policy reports in results (resolves aliases)."""
    return resolve_policy(name).name


def canonical_noise_profile(profile) -> Optional[str]:
    """Normalise any accepted noise-profile form for :class:`SweepJob` storage.

    Accepts ``None``, a :class:`~repro.noise.profiles.NoiseProfile`, its
    canonical JSON (as a string or as the parsed config dict), or a CLI spec
    string (``"biased:eta=4"``).  The uniform profile normalises to ``None``
    so the degenerate case shares the cache identity (and random stream) of
    a profile-less job.
    """
    if profile is None:
        return None
    if isinstance(profile, dict):
        profile = NoiseProfile.from_config(profile)
    elif isinstance(profile, str):
        text = profile.strip()
        profile = (
            NoiseProfile.from_json(text)
            if text.startswith("{")
            else NoiseProfile.parse(text)
        )
    profile.validate()
    return None if profile.is_uniform else profile.canonical_json()


@dataclass(frozen=True)
class SweepJob:
    """One fully-specified Monte-Carlo configuration.

    Every field is a primitive, so a job pickles cheaply to worker processes
    and serialises canonically for content-addressed caching.  ``seed_entropy``
    and ``spawn_key`` pin the job's random stream (see the module docstring);
    ``chunk_shots`` is part of the identity because it determines how the
    shots split across child streams.
    """

    distance: int
    policy: str
    shots: int
    rounds: int
    p: float = 1e-3
    #: Code family the experiment runs on (see :func:`repro.codes.make_code`).
    code_family: str = DEFAULT_CODE_FAMILY
    #: Canonical JSON of a non-uniform :class:`~repro.noise.profiles.NoiseProfile`
    #: (``None`` = the paper's uniform model).
    noise_profile: Optional[str] = None
    leakage_enabled: bool = True
    transport_model: str = LeakageTransportModel.REMAIN.value
    protocol: str = PROTOCOL_SWAP
    decode: bool = True
    decoder_method: str = "auto"
    engine: str = "auto"
    batch_size: Optional[int] = None
    policy_kwargs: Tuple[Tuple[str, object], ...] = ()
    seed_entropy: int = 0
    spawn_key: Tuple[int, ...] = ()
    chunk_shots: int = DEFAULT_CHUNK_SHOTS
    #: Decoder fast-path tuning (see ``repro.decoder.decoder``).  These are
    #: deliberately *not* part of :meth:`config_dict`: corrections — and
    #: therefore every statistic — are bit-identical for any value, so jobs
    #: tuned differently still address the same cache entry.
    decoder_dp_threshold: Optional[int] = None
    decoder_cache_size: Optional[int] = None
    #: Persistent decoder-artifact store directory
    #: (``repro.decoder.artifacts``).  Excluded from :meth:`config_dict` for
    #: the same reason: the store only changes where the decoding-graph
    #: tables come from, never a single correction.
    decoder_artifact_dir: Optional[str] = None
    #: Sequential stopping rule (``repro.experiments.adaptive``): stop
    #: dispatching chunks once the Wilson interval on the job's LER is
    #: tighter than this absolute half-width.  Excluded from
    #: :meth:`config_dict`: adaptivity only decides *how many* of the job's
    #: position-keyed chunks run, never the content of any chunk, so a
    #: truncated run is bit-identical to the prefix of a fixed run and is
    #: cached under that prefix job's address.
    target_ci_halfwidth: Optional[float] = None
    #: Relative variant of the stopping target: stop once the Wilson
    #: half-width falls below ``target_rel_halfwidth * LER-hat`` (only
    #: meaningful once at least one failure was observed).  Perf-only,
    #: excluded from identity like :attr:`target_ci_halfwidth`.
    target_rel_halfwidth: Optional[float] = None
    #: Minimum chunks the stopping rule must observe before it may stop
    #: (``None`` = the module default).  Perf-only, excluded from identity.
    adaptive_min_chunks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shots < 1:
            raise ValueError(
                f"shots must be >= 1, got {self.shots}: a zero-shot job has "
                "no Monte-Carlo stream and would cache a degenerate result"
            )
        if self.chunk_shots < 1:
            raise ValueError(f"chunk_shots must be >= 1, got {self.chunk_shots}")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def config_dict(self) -> Dict[str, object]:
        """JSON-serialisable form of every identity-relevant field.

        ``code_family`` and ``noise_profile`` join the identity only when
        they deviate from the degenerate defaults (rotated surface code,
        uniform noise), so every pre-existing cache entry keeps its address.
        """
        config: Dict[str, object] = {}
        if self.code_family != DEFAULT_CODE_FAMILY:
            config["code_family"] = self.code_family
        if self.noise_profile is not None:
            config["noise_profile"] = self.noise_profile
        config.update({
            "distance": self.distance,
            "policy": self.policy,
            "shots": self.shots,
            "rounds": self.rounds,
            "p": self.p,
            "leakage_enabled": self.leakage_enabled,
            "transport_model": self.transport_model,
            "protocol": self.protocol,
            "decode": self.decode,
            "decoder_method": self.decoder_method,
            "engine": self.engine,
            "batch_size": self.batch_size,
            "policy_kwargs": {key: value for key, value in self.policy_kwargs},
            "seed_entropy": self.seed_entropy,
            "spawn_key": list(self.spawn_key),
            "chunk_shots": self.chunk_shots,
        })
        return config

    def cache_key(self) -> str:
        """Content address of this job (SHA-256 of the canonical config)."""
        return config_hash(self.config_dict())

    # ------------------------------------------------------------------
    # Wire form (sweep-service submissions)
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, object]:
        """Every field as JSON primitives — the sweep-service submit body.

        Unlike :meth:`config_dict` this is *lossless* (perf-only knobs such
        as the decoder tuning fields ride along) so a service-side job is
        exactly the job the client built, including its cache identity.
        """
        return {
            "distance": self.distance,
            "policy": self.policy,
            "shots": self.shots,
            "rounds": self.rounds,
            "p": self.p,
            "code_family": self.code_family,
            "noise_profile": self.noise_profile,
            "leakage_enabled": self.leakage_enabled,
            "transport_model": self.transport_model,
            "protocol": self.protocol,
            "decode": self.decode,
            "decoder_method": self.decoder_method,
            "engine": self.engine,
            "batch_size": self.batch_size,
            "policy_kwargs": [[key, value] for key, value in self.policy_kwargs],
            "seed_entropy": self.seed_entropy,
            "spawn_key": list(self.spawn_key),
            "chunk_shots": self.chunk_shots,
            "decoder_dp_threshold": self.decoder_dp_threshold,
            "decoder_cache_size": self.decoder_cache_size,
            "decoder_artifact_dir": self.decoder_artifact_dir,
            "target_ci_halfwidth": self.target_ci_halfwidth,
            "target_rel_halfwidth": self.target_rel_halfwidth,
            "adaptive_min_chunks": self.adaptive_min_chunks,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "SweepJob":
        """Rebuild a job from :meth:`to_wire` (inverse, bit-identical)."""
        fields = dict(payload)
        fields["policy_kwargs"] = tuple(
            (str(key), value) for key, value in fields.get("policy_kwargs", [])
        )
        fields["spawn_key"] = tuple(int(v) for v in fields.get("spawn_key", []))
        return cls(**fields)

    # ------------------------------------------------------------------
    # Seeds and chunks
    # ------------------------------------------------------------------
    def seed_sequence(self) -> np.random.SeedSequence:
        return np.random.SeedSequence(self.seed_entropy, spawn_key=self.spawn_key)

    @property
    def num_chunks(self) -> int:
        return max(1, math.ceil(self.shots / self.chunk_shots))

    def chunk_sizes(self) -> List[int]:
        """Shots per chunk; all chunks full-size except possibly the last."""
        sizes = [self.chunk_shots] * (self.num_chunks - 1)
        sizes.append(self.shots - self.chunk_shots * (self.num_chunks - 1))
        return sizes

    def chunk_seed(self, index: int) -> np.random.SeedSequence:
        """The child sequence for chunk ``index``.

        Constructed directly from the extended spawn key (equivalent to
        ``self.seed_sequence().spawn(...)[index]``) so any chunk's stream can
        be rebuilt in any process without spawning its predecessors.
        """
        if not 0 <= index < self.num_chunks:
            raise IndexError(f"chunk index {index} out of range for {self.num_chunks} chunks")
        return np.random.SeedSequence(
            self.seed_entropy, spawn_key=self.spawn_key + (index,)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build_experiment(self, rng: RngLike) -> MemoryExperiment:
        """Materialise the configuration into a ready-to-run experiment."""
        noise = NoiseParams.standard(self.p)
        profile = (
            NoiseProfile.from_json(self.noise_profile)
            if self.noise_profile is not None
            else None
        )
        if self.leakage_enabled:
            leakage = LeakageModel.standard(
                self.p, transport_model=LeakageTransportModel(self.transport_model)
            )
        else:
            leakage = LeakageModel.disabled()
        return MemoryExperiment(
            code=make_code(self.code_family, self.distance),
            policy=resolve_policy(self.policy, **dict(self.policy_kwargs)),
            noise=noise,
            noise_profile=profile,
            leakage=leakage,
            rounds=self.rounds,
            protocol=self.protocol,
            decode=self.decode,
            decoder_method=self.decoder_method,
            decoder_dp_threshold=self.decoder_dp_threshold,
            decoder_cache_size=self.decoder_cache_size,
            decoder_artifact_dir=self.decoder_artifact_dir,
            seed=rng,
            engine=self.engine,
            batch_size=self.batch_size,
        )

    def run_chunk(self, index: int) -> MemoryExperimentResult:
        """Run one chunk of this job on its own deterministic stream."""
        shots = self.chunk_sizes()[index]
        rng = np.random.default_rng(self.chunk_seed(index))
        return self.build_experiment(rng).run(shots)

    def run(self) -> MemoryExperimentResult:
        """Run every chunk in-process and merge (the serial reference path)."""
        return merge_chunk_results(
            [self.run_chunk(index) for index in range(self.num_chunks)]
        )


def merge_chunk_results(
    parts: Sequence[MemoryExperimentResult],
) -> MemoryExperimentResult:
    """Combine per-chunk results into the whole-job result.

    Chunks must be passed in chunk order; the shot-weighted arithmetic is then
    fixed, so merged statistics are identical no matter which backend (or
    which worker interleaving) produced the parts.
    """
    if not parts:
        raise ValueError("cannot merge zero chunk results")
    first = parts[0]
    if len(parts) == 1:
        return first
    total_shots = sum(part.shots for part in parts)
    lpr_total = np.zeros_like(first.lpr_total)
    lpr_data = np.zeros_like(first.lpr_data)
    lpr_parity = np.zeros_like(first.lpr_parity)
    speculation = first.speculation
    logical_errors = 0
    total_lrcs = 0.0
    decode = first.logical_errors >= 0
    for index, part in enumerate(parts):
        if part.rounds != first.rounds or part.policy != first.policy:
            raise ValueError("chunk results describe different configurations")
        lpr_total += part.lpr_total * part.shots
        lpr_data += part.lpr_data * part.shots
        lpr_parity += part.lpr_parity * part.shots
        total_lrcs += part.lrcs_per_round * part.shots * part.rounds
        logical_errors += max(part.logical_errors, 0)
        if index:
            speculation = speculation.merge(part.speculation)
    return MemoryExperimentResult(
        policy=first.policy,
        distance=first.distance,
        rounds=first.rounds,
        physical_error_rate=first.physical_error_rate,
        shots=total_shots,
        logical_errors=logical_errors if decode else -1,
        lpr_total=lpr_total / total_shots,
        lpr_data=lpr_data / total_shots,
        lpr_parity=lpr_parity / total_shots,
        lrcs_per_round=total_lrcs / (total_shots * first.rounds),
        speculation=speculation,
        metadata=dict(first.metadata),
    )


def resolve_rounds(distance: int, cycles: Optional[int], rounds: Optional[int]) -> int:
    """Normalise the paper's ``cycles`` convention (1 cycle = d rounds)."""
    if rounds is not None:
        return int(rounds)
    if cycles is None:
        raise ValueError("provide either rounds or cycles")
    return int(cycles) * int(distance)


def root_entropy(seed: RngLike) -> int:
    """Derive the plan-level entropy from any accepted seed form.

    Integers pass through (so identical user seeds address identical cache
    entries); ``None`` draws fresh OS entropy (unseeded sweeps stay random
    between invocations but remain internally deterministic); a live
    ``Generator`` contributes one draw from its stream.
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63))
    entropy = np.random.SeedSequence(seed).entropy
    return int(entropy)


@dataclass
class SweepPlan:
    """An ordered list of jobs sharing one root seed derivation."""

    jobs: List[SweepJob] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        configs: Sequence[Dict[str, object]],
        seed: RngLike = None,
        chunk_shots: Optional[int] = None,
    ) -> "SweepPlan":
        """Turn a list of configuration dicts into seeded jobs.

        Each config supplies ``distance``, ``policy``, ``shots`` and either
        ``cycles`` or ``rounds``, plus any optional :class:`SweepJob` field.
        Job ``i`` receives spawn key ``(i,)`` under the shared root entropy.
        """
        entropy = root_entropy(seed)
        chunk = DEFAULT_CHUNK_SHOTS if chunk_shots is None else int(chunk_shots)
        if chunk < 1:
            raise ValueError("chunk_shots must be >= 1")
        jobs = []
        for index, config in enumerate(configs):
            config = dict(config)
            distance = int(config.pop("distance"))
            cycles = config.pop("cycles", None)
            rounds = resolve_rounds(distance, cycles, config.pop("rounds", None))
            transport = config.pop("transport_model", LeakageTransportModel.REMAIN)
            if isinstance(transport, LeakageTransportModel):
                transport = transport.value
            policy_kwargs = config.pop("policy_kwargs", None) or {}
            policy = canonical_policy_name(str(config.pop("policy")))
            code_family = canonical_code_family(
                str(config.pop("code_family", None) or DEFAULT_CODE_FAMILY)
            )
            noise_profile = canonical_noise_profile(config.pop("noise_profile", None))
            jobs.append(
                SweepJob(
                    distance=distance,
                    policy=policy,
                    rounds=rounds,
                    code_family=code_family,
                    noise_profile=noise_profile,
                    transport_model=str(transport),
                    policy_kwargs=tuple(sorted(policy_kwargs.items())),
                    seed_entropy=entropy,
                    spawn_key=(index,),
                    chunk_shots=chunk,
                    **config,
                )
            )
        return cls(jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[SweepJob]:
        return iter(self.jobs)

    @property
    def total_shots(self) -> int:
        return sum(job.shots for job in self.jobs)

    @property
    def total_chunks(self) -> int:
        return sum(job.num_chunks for job in self.jobs)

    def with_seed(self, seed: RngLike) -> "SweepPlan":
        """The same grid re-derived from a different root seed."""
        entropy = root_entropy(seed)
        return SweepPlan([replace(job, seed_entropy=entropy) for job in self.jobs])

    def to_wire(self) -> Dict[str, object]:
        """JSON form of the whole plan (the sweep-service submit body)."""
        return {"jobs": [job.to_wire() for job in self.jobs]}

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "SweepPlan":
        """Rebuild a plan from :meth:`to_wire` (inverse, bit-identical)."""
        return cls([SweepJob.from_wire(job) for job in payload.get("jobs", [])])
