"""Registry mapping every paper table/figure to its reproduction entry point.

This is the machine-readable index of the paper's evaluation (the experiment
list that used to live in prose documentation): each entry names the workload,
the modules that implement it, and the benchmark that regenerates it, so
tooling (the CLI's ``experiments`` subcommand, documentation builds, CI) can
enumerate the full evaluation.

Monte-Carlo experiments additionally know how to *plan* themselves: their
:class:`ExperimentSpec` carries a builder that emits a
:class:`~repro.experiments.jobs.SweepPlan`, so ``eraser-repro experiments run
fig14 --jobs 4 --cache-dir cache/`` is a one-command, parallel, cached (and
therefore resumable) reproduction of that figure's data.  Analytic,
density-matrix and hardware entries have no plan and point at their benchmark
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.jobs import SweepPlan
from repro.noise.leakage import LeakageTransportModel
from repro.sim.rng import RngLike

#: Distances the paper sweeps; plans keep those ``<= max_distance``.
_PAPER_DISTANCES = (3, 5, 7, 9, 11)


def _distances(max_distance: int) -> list:
    """Valid (odd, >= 3) paper distances up to ``max_distance``, never empty."""
    selected = [d for d in _PAPER_DISTANCES if d <= max_distance]
    return selected or [min(_PAPER_DISTANCES)]


def _plan_fig2c(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    distance = _distances(max_distance)[0]
    configs = [
        dict(
            distance=distance, policy="no-lrc", shots=shots, cycles=cycles,
            leakage_enabled=leakage_enabled,
        )
        for leakage_enabled in (True, False)
        for cycles in (1, 2, 3, 4, 5)
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def _plan_fig5(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import lpr_time_series_plan

    return lpr_time_series_plan(
        distance=_distances(max_distance)[-1], policies=["always-lrc"], p=1e-3,
        cycles=10, shots=shots, seed=seed, chunk_shots=chunk_shots,
    )


def _plan_fig6(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import ler_vs_cycles_plan

    return ler_vs_cycles_plan(
        _distances(max_distance)[-1], ["always-lrc", "optimal"],
        cycles_list=[2, 6, 10], shots=shots, seed=seed, chunk_shots=chunk_shots,
    )


def _compare_plan(p, decode=True, transport=LeakageTransportModel.REMAIN):
    def build(shots, max_distance, seed, chunk_shots) -> SweepPlan:
        from repro.experiments.sweep import DEFAULT_POLICIES, compare_policies_plan

        return compare_policies_plan(
            distances=_distances(max_distance), policies=DEFAULT_POLICIES, p=p,
            cycles=10, shots=shots, decode=decode, transport_model=transport,
            seed=seed, chunk_shots=chunk_shots,
        )

    return build


#: Wilson half-width target of the ``ler-low-p-adaptive`` entry.  Loose
#: enough that the quick CI settings (a few hundred shots per job) reach it
#: and stop early, tight enough that the stopping rule is exercised (a
#: zero-failure job needs ~75 shots before the Wilson upper bound drops
#: under it: halfwidth(0, n) ~= 1.92 / (n + 3.84)).
LOW_P_ADAPTIVE_TARGET = 2.5e-2


def _plan_low_p_adaptive(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    """The fig14b grid with a stopping-rule target stamped on every job."""
    from repro.experiments.adaptive import AdaptiveConfig, apply_adaptive

    plan = _compare_plan(1e-4)(shots, max_distance, seed, chunk_shots)
    return apply_adaptive(
        plan, AdaptiveConfig(target_ci_halfwidth=LOW_P_ADAPTIVE_TARGET)
    )


def _plan_fig15(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import DEFAULT_POLICIES, lpr_time_series_plan

    return lpr_time_series_plan(
        distance=_distances(max_distance)[-1], policies=DEFAULT_POLICIES,
        p=1e-3, cycles=10, shots=shots, seed=seed, chunk_shots=chunk_shots,
    )


def _plan_fig20(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.dqlr.protocol import dqlr_comparison_plan

    return dqlr_comparison_plan(
        distances=_distances(max_distance), p=1e-3, cycles=10, shots=shots,
        seed=seed, chunk_shots=chunk_shots,
    )


def _plan_ablations(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import ablation_plan

    return ablation_plan(
        min(_distances(max_distance)[-1], 5), shots, seed=seed, chunk_shots=chunk_shots,
    )


def _plan_bias(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import ler_vs_bias_plan

    return ler_vs_bias_plan(
        distance=_distances(max_distance)[-1], shots=shots, seed=seed,
        chunk_shots=chunk_shots,
    )


def _plan_heterogeneous(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import ler_heterogeneous_plan

    return ler_heterogeneous_plan(
        distance=_distances(max_distance)[-1], shots=shots, seed=seed,
        chunk_shots=chunk_shots,
    )


def _plan_repetition(shots, max_distance, seed, chunk_shots) -> SweepPlan:
    from repro.experiments.sweep import DEFAULT_POLICIES, compare_policies_plan

    return compare_policies_plan(
        distances=_distances(max_distance), policies=DEFAULT_POLICIES, p=1e-3,
        cycles=10, shots=shots, code_family="repetition", seed=seed,
        chunk_shots=chunk_shots,
    )


def _render(style: str):
    """Render hook bound to a named renderer style.

    Resolved lazily so the registry never imports the (matplotlib-optional)
    report package unless a report is actually rendered — mirroring how plan
    builders lazily import the sweep helpers.
    """

    def hook(spec: "ExperimentSpec", context) -> object:
        from repro.report.renderers import get_renderer

        return get_renderer(style)(spec, context)

    return hook


#: Valid :attr:`ExperimentSpec.kind` values.  ``sweep`` entries are
#: Monte-Carlo; the others are closed-form or deterministic simulations.
EXPERIMENT_KINDS = ("sweep", "analytic", "density-matrix", "hardware")


@dataclass(frozen=True)
class ExperimentSpec:
    """One table or figure of the paper and how this repository reproduces it.

    Attributes:
        experiment_id: Short identifier (e.g. ``fig14``, ``table3``).
        title: What the experiment shows.
        workload: Workload and key parameters used by the paper.
        modules: Library modules implementing the pieces.
        benchmark: Benchmark file that regenerates the data.
        kind: One of :data:`EXPERIMENT_KINDS` — distinguishes Monte-Carlo
            sweeps from analytic / density-matrix / hardware entries so the
            CLI index and the report label entries consistently.
        plan: Optional builder ``(shots, max_distance, seed, chunk_shots) ->
            SweepPlan`` for Monte-Carlo experiments; ``None`` for entries
            that are not plan-backed, which run via their benchmark.
        render: Report hook ``(spec, RenderContext) -> ExperimentArtifact``
            producing this entry's figures/tables for ``eraser-repro report``.
    """

    experiment_id: str
    title: str
    workload: str
    modules: Tuple[str, ...]
    benchmark: str
    kind: str = "sweep"
    plan: Optional[Callable[..., SweepPlan]] = field(default=None, compare=False)
    render: Optional[Callable] = field(default=None, compare=False)

    @property
    def has_plan(self) -> bool:
        return self.plan is not None

    @property
    def has_render(self) -> bool:
        return self.render is not None

    def make_plan(
        self,
        shots: int = 200,
        max_distance: int = 5,
        seed: RngLike = None,
        chunk_shots: Optional[int] = None,
    ) -> SweepPlan:
        """Emit this experiment's sweep plan (raises for plan-less entries)."""
        if self.plan is None:
            raise ValueError(
                f"experiment {self.experiment_id!r} has no sweep plan; "
                f"run its benchmark instead: {self.benchmark}"
            )
        return self.plan(shots, max_distance, seed, chunk_shots)

    def render_artifact(self, context):
        """Produce this entry's report artifact (raises for hook-less entries)."""
        if self.render is None:
            raise ValueError(
                f"experiment {self.experiment_id!r} has no report renderer; "
                f"run its benchmark instead: {self.benchmark}"
            )
        return self.render(self, context)


_SPECS = (
    ExperimentSpec(
        "fig2c",
        "Leakage errors sharply degrade the logical error rate",
        "memory-Z, d=3 (paper: d=7), p=1e-3, 1-5 QEC cycles, with/without leakage",
        ("repro.experiments.sweep", "repro.core.policies"),
        "benchmarks/bench_fig02_leakage_impact.py",
        plan=_plan_fig2c,
        render=_render("ler_vs_cycles"),
    ),
    ExperimentSpec(
        "eq1-2",
        "LRCs facilitate leakage transport (analytic + Monte-Carlo)",
        "single stabilizer, p_leak=1e-4, p_transport=0.1",
        ("repro.analysis.analytic", "repro.sim.frame_simulator"),
        "benchmarks/bench_eq12_transport.py",
        kind="analytic",
        render=_render("transport_analytic"),
    ),
    ExperimentSpec(
        "table2",
        "Probability a leaked data qubit stays invisible for r rounds",
        "analytic, four-neighbour data qubit",
        ("repro.analysis.analytic",),
        "benchmarks/bench_table2_invisible.py",
        kind="analytic",
        render=_render("invisible_table"),
    ),
    ExperimentSpec(
        "fig5",
        "LPR under Always-LRCs, split into data and parity qubits",
        "memory-Z, d=5 (paper: d=7), p=1e-3, 10 cycles",
        ("repro.experiments.memory", "repro.core.policies.always_lrc"),
        "benchmarks/bench_fig05_lpr_always.py",
        plan=_plan_fig5,
        render=_render("lpr_time_series"),
    ),
    ExperimentSpec(
        "fig6",
        "Always-LRCs versus idealized (Optimal) scheduling",
        "memory-Z, d=5 (paper: d=7), p=1e-3, 10 cycles",
        ("repro.experiments.sweep", "repro.core.policies.optimal"),
        "benchmarks/bench_fig06_always_vs_optimal.py",
        plan=_plan_fig6,
        render=_render("ler_vs_cycles"),
    ),
    ExperimentSpec(
        "fig8",
        "Density-matrix study of leakage spread across one Z stabilizer",
        "five ququarts, RX(0.65*pi) faulty CNOTs, transport 0.1",
        ("repro.densitymatrix.study", "repro.densitymatrix.dm"),
        "benchmarks/bench_fig08_density_matrix.py",
        kind="density-matrix",
        render=_render("density_study"),
    ),
    ExperimentSpec(
        "fig14",
        "LER vs code distance for Always/ERASER/ERASER+M/Optimal at p=1e-3",
        "memory-Z, d=3..11 (default 3..5), 10 cycles",
        ("repro.experiments.sweep", "repro.core.policies", "repro.decoder"),
        "benchmarks/bench_fig14_ler_vs_distance.py",
        plan=_compare_plan(1e-3),
        render=_render("ler_vs_distance"),
    ),
    ExperimentSpec(
        "fig14b",
        "LER vs code distance at the lower physical error rate p=1e-4",
        "memory-Z, d=3..5, 10 cycles",
        ("repro.experiments.sweep",),
        "benchmarks/bench_fig14b_low_error_rate.py",
        plan=_compare_plan(1e-4),
        render=_render("ler_vs_distance"),
    ),
    ExperimentSpec(
        "ler-low-p-adaptive",
        "LER vs distance at p=1e-4 under the sequential stopping rule",
        "memory-Z, d=3..5, 10 cycles, Wilson half-width target 2.5e-2",
        ("repro.experiments.adaptive", "repro.experiments.sweep"),
        "benchmarks/bench_adaptive_allocation.py",
        plan=_plan_low_p_adaptive,
        render=_render("ler_vs_distance"),
    ),
    ExperimentSpec(
        "fig15",
        "LPR over time for all four policies",
        "memory-Z, d=5 (paper: d=11), p=1e-3, 10 cycles",
        ("repro.experiments.sweep",),
        "benchmarks/bench_fig15_lpr_policies.py",
        plan=_plan_fig15,
        render=_render("lpr_time_series"),
    ),
    ExperimentSpec(
        "fig16",
        "LRC speculation accuracy, FPR and FNR",
        "memory-Z, d=3..5 (paper: 3..11), p=1e-3, 10 cycles",
        ("repro.experiments.metrics", "repro.core.lsb"),
        "benchmarks/bench_fig16_speculation.py",
        plan=_compare_plan(1e-3, decode=False),
        render=_render("speculation"),
    ),
    ExperimentSpec(
        "table3",
        "FPGA utilisation and latency of the ERASER controller",
        "Kintex UltraScale+ xcku3p, d=3..11",
        ("repro.hardware.cost_model", "repro.hardware.rtl_gen"),
        "benchmarks/bench_table3_fpga.py",
        kind="hardware",
        render=_render("fpga_table"),
    ),
    ExperimentSpec(
        "table4",
        "Average LRCs scheduled per round per policy",
        "memory-Z, d=3..5 (paper: 3..11), p=1e-3, 10 cycles",
        ("repro.experiments.sweep",),
        "benchmarks/bench_table4_lrc_counts.py",
        plan=_compare_plan(1e-3),
        render=_render("lrc_counts"),
    ),
    ExperimentSpec(
        "fig17",
        "LER/LPR under the alternative (exchange) leakage-transport model",
        "memory-Z, d=3..5, p=1e-3, exchange transport",
        ("repro.noise.leakage", "repro.experiments.sweep"),
        "benchmarks/bench_fig17_alt_transport.py",
        plan=_compare_plan(1e-3, transport=LeakageTransportModel.EXCHANGE),
        render=_render("ler_vs_distance"),
    ),
    ExperimentSpec(
        "fig20",
        "Scheduling Google's DQLR protocol with ERASER",
        "memory-Z, d=3..5, p=1e-3, DQLR protocol, exchange transport",
        ("repro.dqlr.protocol", "repro.core.qsg"),
        "benchmarks/bench_fig20_dqlr.py",
        plan=_plan_fig20,
        render=_render("ler_vs_distance"),
    ),
    ExperimentSpec(
        "ablations",
        "Design-choice ablations: speculation threshold, backups, matcher",
        "memory-Z, d=5, p=1e-3, 10 cycles",
        ("repro.core.lsb", "repro.core.dli", "repro.decoder.matching"),
        "benchmarks/bench_ablation_design_choices.py",
        plan=_plan_ablations,
        render=_render("ablations"),
    ),
    ExperimentSpec(
        "ler-vs-bias",
        "LER under Z-biased depolarising noise (scenario diversity)",
        "memory-Z, d=5, p=1e-3, 10 cycles, bias eta in {1, 2, 4, 10}",
        ("repro.noise.profiles", "repro.experiments.sweep"),
        "benchmarks/bench_scenario_noise_profiles.py",
        plan=_plan_bias,
        render=_render("ler_vs_profile"),
    ),
    ExperimentSpec(
        "ler-heterogeneous",
        "LER under log-normal per-qubit rate heterogeneity (scenario diversity)",
        "memory-Z, d=5, p=1e-3, 10 cycles, spread in {0, 0.5, 1}",
        ("repro.noise.profiles", "repro.experiments.sweep"),
        "benchmarks/bench_scenario_noise_profiles.py",
        plan=_plan_heterogeneous,
        render=_render("ler_vs_profile"),
    ),
    ExperimentSpec(
        "repetition-baseline",
        "Repetition-code family under every policy (scenario diversity)",
        "memory-Z repetition code, d=3..5, p=1e-3, 10 cycles",
        ("repro.codes.repetition", "repro.experiments.sweep"),
        "benchmarks/bench_scenario_repetition.py",
        plan=_plan_repetition,
        render=_render("ler_vs_distance"),
    ),
)

EXPERIMENTS: Dict[str, ExperimentSpec] = {spec.experiment_id: spec for spec in _SPECS}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (raises KeyError with a helpful message)."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def spec_marker(spec: ExperimentSpec) -> str:
    """How an entry runs: plan-backed sweeps vs analytic/hardware benchmarks.

    The same marker text appears in ``eraser-repro experiments list`` and in
    the report index, so the two stay consistent.
    """
    if spec.has_plan:
        return f"[{spec.kind}: experiments run]"
    return f"[{spec.kind}: benchmark only]"


def format_experiment_index() -> str:
    """Plain-text index of every experiment (used by the CLI)."""
    lines = []
    for spec in _SPECS:
        lines.append(f"{spec.experiment_id:<10s} {spec.title}  {spec_marker(spec)}")
        lines.append(f"{'':<10s}   workload : {spec.workload}")
        lines.append(f"{'':<10s}   modules  : {', '.join(spec.modules)}")
        lines.append(f"{'':<10s}   benchmark: {spec.benchmark}")
    return "\n".join(lines)
