"""Registry mapping every paper table/figure to its reproduction entry point.

This is the machine-readable form of the per-experiment index in DESIGN.md:
each entry names the workload, the modules that implement it, and the
benchmark that regenerates it, so tooling (the CLI's ``experiments``
subcommand, documentation builds, CI) can enumerate the full evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ExperimentSpec:
    """One table or figure of the paper and how this repository reproduces it.

    Attributes:
        experiment_id: Short identifier (e.g. ``fig14``, ``table3``).
        title: What the experiment shows.
        workload: Workload and key parameters used by the paper.
        modules: Library modules implementing the pieces.
        benchmark: Benchmark file that regenerates the data.
    """

    experiment_id: str
    title: str
    workload: str
    modules: Tuple[str, ...]
    benchmark: str


_SPECS = (
    ExperimentSpec(
        "fig2c",
        "Leakage errors sharply degrade the logical error rate",
        "memory-Z, d=3 (paper: d=7), p=1e-3, 1-5 QEC cycles, with/without leakage",
        ("repro.experiments.sweep", "repro.core.policies"),
        "benchmarks/bench_fig02_leakage_impact.py",
    ),
    ExperimentSpec(
        "eq1-2",
        "LRCs facilitate leakage transport (analytic + Monte-Carlo)",
        "single stabilizer, p_leak=1e-4, p_transport=0.1",
        ("repro.analysis.analytic", "repro.sim.frame_simulator"),
        "benchmarks/bench_eq12_transport.py",
    ),
    ExperimentSpec(
        "table2",
        "Probability a leaked data qubit stays invisible for r rounds",
        "analytic, four-neighbour data qubit",
        ("repro.analysis.analytic",),
        "benchmarks/bench_table2_invisible.py",
    ),
    ExperimentSpec(
        "fig5",
        "LPR under Always-LRCs, split into data and parity qubits",
        "memory-Z, d=5 (paper: d=7), p=1e-3, 10 cycles",
        ("repro.experiments.memory", "repro.core.policies.always_lrc"),
        "benchmarks/bench_fig05_lpr_always.py",
    ),
    ExperimentSpec(
        "fig6",
        "Always-LRCs versus idealized (Optimal) scheduling",
        "memory-Z, d=5 (paper: d=7), p=1e-3, 10 cycles",
        ("repro.experiments.sweep", "repro.core.policies.optimal"),
        "benchmarks/bench_fig06_always_vs_optimal.py",
    ),
    ExperimentSpec(
        "fig8",
        "Density-matrix study of leakage spread across one Z stabilizer",
        "five ququarts, RX(0.65*pi) faulty CNOTs, transport 0.1",
        ("repro.densitymatrix.study", "repro.densitymatrix.dm"),
        "benchmarks/bench_fig08_density_matrix.py",
    ),
    ExperimentSpec(
        "fig14",
        "LER vs code distance for Always/ERASER/ERASER+M/Optimal at p=1e-3",
        "memory-Z, d=3..11 (default 3..5), 10 cycles",
        ("repro.experiments.sweep", "repro.core.policies", "repro.decoder"),
        "benchmarks/bench_fig14_ler_vs_distance.py",
    ),
    ExperimentSpec(
        "fig14b",
        "LER vs code distance at the lower physical error rate p=1e-4",
        "memory-Z, d=3..5, 10 cycles",
        ("repro.experiments.sweep",),
        "benchmarks/bench_fig14b_low_error_rate.py",
    ),
    ExperimentSpec(
        "fig15",
        "LPR over time for all four policies",
        "memory-Z, d=5 (paper: d=11), p=1e-3, 10 cycles",
        ("repro.experiments.sweep",),
        "benchmarks/bench_fig15_lpr_policies.py",
    ),
    ExperimentSpec(
        "fig16",
        "LRC speculation accuracy, FPR and FNR",
        "memory-Z, d=3..5 (paper: 3..11), p=1e-3, 10 cycles",
        ("repro.experiments.metrics", "repro.core.lsb"),
        "benchmarks/bench_fig16_speculation.py",
    ),
    ExperimentSpec(
        "table3",
        "FPGA utilisation and latency of the ERASER controller",
        "Kintex UltraScale+ xcku3p, d=3..11",
        ("repro.hardware.cost_model", "repro.hardware.rtl_gen"),
        "benchmarks/bench_table3_fpga.py",
    ),
    ExperimentSpec(
        "table4",
        "Average LRCs scheduled per round per policy",
        "memory-Z, d=3..5 (paper: 3..11), p=1e-3, 10 cycles",
        ("repro.experiments.sweep",),
        "benchmarks/bench_table4_lrc_counts.py",
    ),
    ExperimentSpec(
        "fig17",
        "LER/LPR under the alternative (exchange) leakage-transport model",
        "memory-Z, d=3..5, p=1e-3, exchange transport",
        ("repro.noise.leakage", "repro.experiments.sweep"),
        "benchmarks/bench_fig17_alt_transport.py",
    ),
    ExperimentSpec(
        "fig20",
        "Scheduling Google's DQLR protocol with ERASER",
        "memory-Z, d=3..5, p=1e-3, DQLR protocol, exchange transport",
        ("repro.dqlr.protocol", "repro.core.qsg"),
        "benchmarks/bench_fig20_dqlr.py",
    ),
    ExperimentSpec(
        "ablations",
        "Design-choice ablations: speculation threshold, backups, matcher",
        "memory-Z, d=5, p=1e-3, 10 cycles",
        ("repro.core.lsb", "repro.core.dli", "repro.decoder.matching"),
        "benchmarks/bench_ablation_design_choices.py",
    ),
)

EXPERIMENTS: Dict[str, ExperimentSpec] = {spec.experiment_id: spec for spec in _SPECS}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (raises KeyError with a helpful message)."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def format_experiment_index() -> str:
    """Plain-text index of every experiment (used by the CLI)."""
    lines = []
    for spec in _SPECS:
        lines.append(f"{spec.experiment_id:<10s} {spec.title}")
        lines.append(f"{'':<10s}   workload : {spec.workload}")
        lines.append(f"{'':<10s}   modules  : {', '.join(spec.modules)}")
        lines.append(f"{'':<10s}   benchmark: {spec.benchmark}")
    return "\n".join(lines)
