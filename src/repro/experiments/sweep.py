"""Parameter sweeps used by the CLI, the benchmark harness and the examples.

Every table and figure of the paper can be regenerated with a single call:

* :func:`ler_vs_distance` — Figure 14 / 17 / 20 style sweeps (LER vs distance
  for several policies),
* :func:`lpr_time_series` — Figure 5 / 6 / 15 / 18 / 21 style leakage
  population ratio traces,
* :func:`compare_policies` — a general sweep returning a
  :class:`~repro.experiments.results.PolicySweepResult`.

Sweeps are *planned* and then *executed*.  Each helper has a ``*_plan``
twin that expands the parameter grid into a
:class:`~repro.experiments.jobs.SweepPlan` — one seeded
:class:`~repro.experiments.jobs.SweepJob` per configuration, with child seeds
fanned out via ``numpy.random.SeedSequence.spawn`` — and the sweep itself
hands the plan to a :class:`~repro.experiments.executor.SweepExecutor`.  All
helpers therefore share three orchestration knobs:

* ``jobs`` — worker processes (``1`` = in-process; results are bit-identical
  either way),
* ``cache_dir`` — content-addressed on-disk result cache; reruns of any
  configuration already computed there skip its Monte-Carlo work entirely,
* ``resume`` — reuse the default cache directory so an interrupted sweep
  continues from the configurations already finished.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.qsg import PROTOCOL_SWAP
from repro.experiments.adaptive import AdaptiveConfig
from repro.experiments.executor import SweepExecutor, warn_unseeded_cache
from repro.experiments.jobs import SweepJob, SweepPlan
from repro.experiments.results import MemoryExperimentResult, PolicySweepResult
from repro.noise.leakage import LeakageTransportModel
from repro.noise.profiles import NoiseProfile
from repro.sim.rng import RngLike

DEFAULT_POLICIES = ("always-lrc", "eraser", "eraser+m", "optimal")


def _executor(
    jobs: int,
    cache_dir: Optional[str],
    resume: bool,
    executor: Optional[SweepExecutor],
    seed: RngLike = None,
    decoder_artifact_dir: Optional[str] = None,
    adaptive: Optional[AdaptiveConfig] = None,
) -> SweepExecutor:
    if executor is not None:
        return executor
    warn_unseeded_cache(seed, cache_dir, resume)
    return SweepExecutor(
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        decoder_artifact_dir=decoder_artifact_dir,
        adaptive=adaptive,
    )


def _config(
    distance: int,
    policy_name: str,
    p: float,
    shots: int,
    cycles: Optional[int] = None,
    rounds: Optional[int] = None,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    engine: str = "auto",
    batch_size: Optional[int] = None,
    decoder_dp_threshold: Optional[int] = None,
    decoder_cache_size: Optional[int] = None,
    decoder_artifact_dir: Optional[str] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
) -> Dict[str, object]:
    """One grid point in the dict form consumed by :meth:`SweepPlan.build`."""
    return dict(
        distance=distance,
        policy=policy_name,
        p=p,
        shots=shots,
        cycles=cycles,
        rounds=rounds,
        leakage_enabled=leakage_enabled,
        transport_model=transport_model,
        protocol=protocol,
        decode=decode,
        decoder_method=decoder_method,
        engine=engine,
        batch_size=batch_size,
        decoder_dp_threshold=decoder_dp_threshold,
        decoder_cache_size=decoder_cache_size,
        decoder_artifact_dir=decoder_artifact_dir,
        code_family=code_family,
        noise_profile=noise_profile,
    )


def run_single_plan(
    distance: int,
    policy_name: str,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    rounds: Optional[int] = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    chunk_shots: Optional[int] = None,
    decoder_dp_threshold: Optional[int] = None,
    decoder_cache_size: Optional[int] = None,
    decoder_artifact_dir: Optional[str] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
) -> SweepPlan:
    """A one-job plan for a single (distance, policy) configuration."""
    return SweepPlan.build(
        [
            _config(
                distance,
                policy_name,
                p,
                shots,
                cycles=cycles if rounds is None else None,
                rounds=rounds,
                leakage_enabled=leakage_enabled,
                transport_model=transport_model,
                protocol=protocol,
                decode=decode,
                decoder_method=decoder_method,
                engine=engine,
                batch_size=batch_size,
                decoder_dp_threshold=decoder_dp_threshold,
                decoder_cache_size=decoder_cache_size,
                decoder_artifact_dir=decoder_artifact_dir,
                code_family=code_family,
                noise_profile=noise_profile,
            )
        ],
        seed=seed,
        chunk_shots=chunk_shots,
    )


def run_single(
    distance: int,
    policy_name: str,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    rounds: Optional[int] = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    chunk_shots: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
    decoder_dp_threshold: Optional[int] = None,
    decoder_cache_size: Optional[int] = None,
    decoder_artifact_dir: Optional[str] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
    adaptive: Optional[AdaptiveConfig] = None,
) -> MemoryExperimentResult:
    """Run one (distance, policy) configuration and return its result."""
    plan = run_single_plan(
        distance=distance,
        policy_name=policy_name,
        p=p,
        cycles=cycles,
        shots=shots,
        leakage_enabled=leakage_enabled,
        transport_model=transport_model,
        protocol=protocol,
        decode=decode,
        decoder_method=decoder_method,
        seed=seed,
        rounds=rounds,
        engine=engine,
        batch_size=batch_size,
        chunk_shots=chunk_shots,
        decoder_dp_threshold=decoder_dp_threshold,
        decoder_cache_size=decoder_cache_size,
        decoder_artifact_dir=decoder_artifact_dir,
        code_family=code_family,
        noise_profile=noise_profile,
    )
    return _executor(
        jobs, cache_dir, resume, executor, seed, decoder_artifact_dir, adaptive
    ).run(plan)[0]


def compare_policies_plan(
    distances: Sequence[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    chunk_shots: Optional[int] = None,
    decoder_dp_threshold: Optional[int] = None,
    decoder_cache_size: Optional[int] = None,
    decoder_artifact_dir: Optional[str] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
) -> SweepPlan:
    """The (distance x policy) grid behind Figures 14-17 and 20 as a plan."""
    configs = [
        _config(
            distance,
            policy_name,
            p,
            shots,
            cycles=cycles,
            leakage_enabled=leakage_enabled,
            transport_model=transport_model,
            protocol=protocol,
            decode=decode,
            decoder_method=decoder_method,
            engine=engine,
            batch_size=batch_size,
            decoder_dp_threshold=decoder_dp_threshold,
            decoder_cache_size=decoder_cache_size,
            decoder_artifact_dir=decoder_artifact_dir,
            code_family=code_family,
            noise_profile=noise_profile,
        )
        for distance in distances
        for policy_name in policies
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def compare_policies(
    distances: Sequence[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    chunk_shots: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
    decoder_dp_threshold: Optional[int] = None,
    decoder_cache_size: Optional[int] = None,
    decoder_artifact_dir: Optional[str] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
    adaptive: Optional[AdaptiveConfig] = None,
) -> PolicySweepResult:
    """Sweep policies across code distances (the shape behind Figures 14-17, 20).

    ``adaptive`` enables the sequential stopping rule on every decode job
    (see :mod:`repro.experiments.adaptive`): each (distance, policy) point
    runs only until the Wilson interval on its LER meets the target, which
    is what makes the low-``p`` Figure 14(b) regime affordable.
    """
    plan = compare_policies_plan(
        distances=distances,
        policies=policies,
        p=p,
        cycles=cycles,
        shots=shots,
        leakage_enabled=leakage_enabled,
        transport_model=transport_model,
        protocol=protocol,
        decode=decode,
        decoder_method=decoder_method,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
        chunk_shots=chunk_shots,
        decoder_dp_threshold=decoder_dp_threshold,
        decoder_cache_size=decoder_cache_size,
        decoder_artifact_dir=decoder_artifact_dir,
        code_family=code_family,
        noise_profile=noise_profile,
    )
    results = _executor(
        jobs, cache_dir, resume, executor, seed, decoder_artifact_dir, adaptive
    ).run(plan)
    return PolicySweepResult(list(results))


def ler_vs_distance(
    distances: Sequence[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    **kwargs,
) -> Dict[str, Dict[int, float]]:
    """Logical error rate per policy per distance (Figure 14 series)."""
    sweep = compare_policies(distances, policies, decode=True, **kwargs)
    return sweep.ler_table()


def lpr_time_series_plan(
    distance: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 50,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    chunk_shots: Optional[int] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
) -> SweepPlan:
    """The per-policy LPR trace sweep as a plan (decoding disabled)."""
    configs = [
        _config(
            distance,
            policy_name,
            p,
            shots,
            cycles=cycles,
            transport_model=transport_model,
            protocol=protocol,
            decode=False,
            engine=engine,
            batch_size=batch_size,
            code_family=code_family,
            noise_profile=noise_profile,
        )
        for policy_name in policies
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def lpr_time_series(
    distance: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 50,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    chunk_shots: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
    decoder_artifact_dir: Optional[str] = None,
    code_family: Optional[str] = None,
    noise_profile=None,
) -> Dict[str, np.ndarray]:
    """Per-round leakage population ratio per policy (Figures 5, 15, 18, 21).

    Decoding is disabled because the LPR does not depend on it, which makes
    these long time-series sweeps much faster.
    """
    plan = lpr_time_series_plan(
        distance=distance,
        policies=policies,
        p=p,
        cycles=cycles,
        shots=shots,
        transport_model=transport_model,
        protocol=protocol,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
        chunk_shots=chunk_shots,
        code_family=code_family,
        noise_profile=noise_profile,
    )
    # decode=False, so the artifact dir only matters if an executor reuses it;
    # the prebuild step skips non-decode jobs either way.
    results = _executor(
        jobs, cache_dir, resume, executor, seed, decoder_artifact_dir
    ).run(plan)
    return {result.policy: result.lpr_total for result in results}


#: Design-choice ablation axes (Section 5): LSB speculation threshold,
#: SWAP-table backup count, and decoding-graph matching engine.  Shared by
#: the registry plan, the report renderer and the ablation benchmark so the
#: three can never drift.
ABLATION_THRESHOLDS = (1, 2, 4)
ABLATION_BACKUPS = (0, 1, 3)
ABLATION_MATCHERS = ("mwpm", "greedy")


def ablation_plan(
    distance: int,
    shots: int,
    p: float = 1e-3,
    cycles: int = 10,
    seed: RngLike = None,
    chunk_shots: Optional[int] = None,
) -> SweepPlan:
    """The Section 5 design-choice grid: one ERASER config per axis point."""
    base = dict(distance=distance, policy="eraser", shots=shots, p=p, cycles=cycles)
    configs = (
        [dict(base, policy_kwargs={"speculation_threshold_override": t}) for t in ABLATION_THRESHOLDS]
        + [dict(base, policy_kwargs={"num_backups": b}) for b in ABLATION_BACKUPS]
        + [dict(base, decoder_method=m) for m in ABLATION_MATCHERS]
    )
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def ablation_label(job: SweepJob) -> str:
    """Which ablation axis point a job of :func:`ablation_plan` represents."""
    kwargs = dict(job.policy_kwargs)
    if "speculation_threshold_override" in kwargs:
        return f"threshold={kwargs['speculation_threshold_override']}"
    if "num_backups" in kwargs:
        return f"backups={kwargs['num_backups']}"
    return f"matcher={job.decoder_method}"


def ler_vs_cycles_plan(
    distance: int,
    policies: Sequence[str],
    cycles_list: Sequence[int],
    p: float = 1e-3,
    shots: int = 100,
    leakage_enabled: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
    chunk_shots: Optional[int] = None,
) -> SweepPlan:
    """The (cycles x policy) grid behind Figures 1(c), 2(c) and 6 as a plan."""
    configs = [
        _config(
            distance,
            policy_name,
            p,
            shots,
            cycles=cycles,
            leakage_enabled=leakage_enabled,
            decoder_method=decoder_method,
            engine=engine,
            batch_size=batch_size,
        )
        for cycles in cycles_list
        for policy_name in policies
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def ler_vs_cycles(
    distance: int,
    policies: Sequence[str],
    cycles_list: Sequence[int],
    p: float = 1e-3,
    shots: int = 100,
    leakage_enabled: bool = True,
    seed: RngLike = None,
    decoder_method: str = "auto",
    engine: str = "auto",
    batch_size: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    chunk_shots: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
    decoder_artifact_dir: Optional[str] = None,
) -> Dict[str, Dict[int, float]]:
    """LER as a function of the number of QEC cycles (Figures 1(c), 2(c), 6)."""
    plan = ler_vs_cycles_plan(
        distance=distance,
        policies=policies,
        cycles_list=cycles_list,
        p=p,
        shots=shots,
        leakage_enabled=leakage_enabled,
        decoder_method=decoder_method,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
        chunk_shots=chunk_shots,
    )
    results = _executor(
        jobs, cache_dir, resume, executor, seed, decoder_artifact_dir
    ).run(plan)
    table: Dict[str, Dict[int, float]] = {}
    for result in results:
        cycles = result.rounds // result.distance
        table.setdefault(result.policy, {})[cycles] = result.logical_error_rate
    return table


#: Scenario-diversity axes beyond the paper's uniform Section 5.2.1 model.
#: Shared by the registry entries, the report renderers and the scenario
#: benchmark so the three can never drift.
BIAS_ETAS = (1.0, 2.0, 4.0, 10.0)
HETEROGENEOUS_SPREADS = (0.0, 0.5, 1.0)
#: Fixed profile seed of the registry's heterogeneous sweep (the profile draw
#: is seeded separately from the Monte-Carlo stream, so this pins *which*
#: per-qubit rate landscape every run of the entry sees).
HETEROGENEOUS_PROFILE_SEED = 7


def ler_vs_bias_plan(
    distance: int,
    policies: Sequence[str] = ("always-lrc", "eraser"),
    etas: Sequence[float] = BIAS_ETAS,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    seed: RngLike = None,
    chunk_shots: Optional[int] = None,
) -> SweepPlan:
    """LER under Z-biased depolarising noise, one job per (policy, eta).

    ``eta = 1`` is the paper's uniform Pauli mix, so the sweep's first column
    doubles as a consistency anchor against the Figure 14 numbers.
    """
    configs = [
        _config(
            distance,
            policy_name,
            p,
            shots,
            cycles=cycles,
            noise_profile=NoiseProfile.biased(eta),
        )
        for eta in etas
        for policy_name in policies
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def ler_heterogeneous_plan(
    distance: int,
    policies: Sequence[str] = ("always-lrc", "eraser"),
    spreads: Sequence[float] = HETEROGENEOUS_SPREADS,
    profile_seed: int = HETEROGENEOUS_PROFILE_SEED,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    seed: RngLike = None,
    chunk_shots: Optional[int] = None,
) -> SweepPlan:
    """LER under log-normal per-qubit rate heterogeneity, per (policy, spread).

    ``spread = 0`` degenerates to uniform per-qubit arrays, whose statistics
    are bit-identical to the scalar fast path (the differential suite pins
    this), anchoring the sweep to the paper's operating point.
    """
    configs = [
        _config(
            distance,
            policy_name,
            p,
            shots,
            cycles=cycles,
            noise_profile=NoiseProfile.heterogeneous(profile_seed, spread),
        )
        for spread in spreads
        for policy_name in policies
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)
