"""Parameter sweeps used by the benchmark harness and the examples.

These helpers wrap :class:`~repro.experiments.memory.MemoryExperiment` so that
every table and figure of the paper can be regenerated with a single call:

* :func:`ler_vs_distance` — Figure 14 / 17 / 20 style sweeps (LER vs distance
  for several policies),
* :func:`lpr_time_series` — Figure 5 / 6 / 15 / 18 / 21 style leakage
  population ratio traces,
* :func:`compare_policies` — a general sweep returning a
  :class:`~repro.experiments.results.PolicySweepResult`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.core.policies import make_policy
from repro.core.qsg import PROTOCOL_SWAP
from repro.experiments.memory import MemoryExperiment
from repro.experiments.results import MemoryExperimentResult, PolicySweepResult
from repro.noise.leakage import LeakageModel, LeakageTransportModel
from repro.noise.model import NoiseParams
from repro.sim.rng import RngLike, make_rng

DEFAULT_POLICIES = ("always-lrc", "eraser", "eraser+m", "optimal")


def _make_leakage(
    p: float,
    leakage_enabled: bool,
    transport_model: LeakageTransportModel,
) -> LeakageModel:
    if not leakage_enabled:
        return LeakageModel.disabled()
    return LeakageModel.standard(p, transport_model=transport_model)


def run_single(
    distance: int,
    policy_name: str,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    rounds: Optional[int] = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
) -> MemoryExperimentResult:
    """Run one (distance, policy) configuration and return its result."""
    code = RotatedSurfaceCode(distance)
    noise = NoiseParams.standard(p)
    leakage = _make_leakage(p, leakage_enabled, transport_model)
    experiment = MemoryExperiment(
        code=code,
        policy=make_policy(policy_name),
        noise=noise,
        leakage=leakage,
        rounds=rounds,
        cycles=cycles if rounds is None else None,
        protocol=protocol,
        decode=decode,
        decoder_method=decoder_method,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
    )
    return experiment.run(shots)


def compare_policies(
    distances: Sequence[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    leakage_enabled: bool = True,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
) -> PolicySweepResult:
    """Sweep policies across code distances (the shape behind Figures 14-17, 20)."""
    rng = make_rng(seed)
    sweep = PolicySweepResult()
    for distance in distances:
        for policy_name in policies:
            result = run_single(
                distance=distance,
                policy_name=policy_name,
                p=p,
                cycles=cycles,
                shots=shots,
                leakage_enabled=leakage_enabled,
                transport_model=transport_model,
                protocol=protocol,
                decode=decode,
                decoder_method=decoder_method,
                seed=rng,
                engine=engine,
                batch_size=batch_size,
            )
            sweep.add(result)
    return sweep


def ler_vs_distance(
    distances: Sequence[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    **kwargs,
) -> Dict[str, Dict[int, float]]:
    """Logical error rate per policy per distance (Figure 14 series)."""
    sweep = compare_policies(distances, policies, decode=True, **kwargs)
    return sweep.ler_table()


def lpr_time_series(
    distance: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 50,
    transport_model: LeakageTransportModel = LeakageTransportModel.REMAIN,
    protocol: str = PROTOCOL_SWAP,
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Per-round leakage population ratio per policy (Figures 5, 15, 18, 21).

    Decoding is disabled because the LPR does not depend on it, which makes
    these long time-series sweeps much faster.
    """
    rng = make_rng(seed)
    series: Dict[str, np.ndarray] = {}
    for policy_name in policies:
        result = run_single(
            distance=distance,
            policy_name=policy_name,
            p=p,
            cycles=cycles,
            shots=shots,
            transport_model=transport_model,
            protocol=protocol,
            decode=False,
            seed=rng,
            engine=engine,
            batch_size=batch_size,
        )
        series[result.policy] = result.lpr_total
    return series


def ler_vs_cycles(
    distance: int,
    policies: Sequence[str],
    cycles_list: Sequence[int],
    p: float = 1e-3,
    shots: int = 100,
    leakage_enabled: bool = True,
    seed: RngLike = None,
    decoder_method: str = "auto",
    engine: str = "auto",
    batch_size: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """LER as a function of the number of QEC cycles (Figures 1(c), 2(c), 6)."""
    rng = make_rng(seed)
    table: Dict[str, Dict[int, float]] = {}
    for cycles in cycles_list:
        for policy_name in policies:
            result = run_single(
                distance=distance,
                policy_name=policy_name,
                p=p,
                cycles=cycles,
                shots=shots,
                leakage_enabled=leakage_enabled,
                decoder_method=decoder_method,
                seed=rng,
                engine=engine,
                batch_size=batch_size,
            )
            table.setdefault(result.policy, {})[cycles] = result.logical_error_rate
    return table
