"""Sweep execution backends: serial, multiprocess, cached, resumable.

The :class:`SweepExecutor` turns a :class:`~repro.experiments.jobs.SweepPlan`
into results.  Work is scheduled at *chunk* granularity — every job is split
into fixed-size shot chunks with independent, order-insensitive random
streams — so a pool stays saturated even when the sweep mixes one expensive
configuration with many cheap ones, and the serial backend (``jobs=1``)
produces bit-identical statistics by running exactly the same chunks through
exactly the same merge.

When a cache directory is configured, finished jobs are persisted to a
content-addressed :class:`~repro.experiments.store.ResultStore` and looked up
before any Monte-Carlo work is scheduled.  A rerun of the same sweep (same
configurations, same seed) therefore performs zero simulation, and a sweep
interrupted part-way resumes from the jobs already on disk.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, as_completed, wait
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.adaptive import AdaptiveConfig, apply_adaptive, job_adaptive_config
from repro.experiments.jobs import SweepJob, SweepPlan, merge_chunk_results
from repro.experiments.metrics import MetricsRegistry
from repro.experiments.results import MemoryExperimentResult
from repro.experiments.store import ResultStore, default_cache_dir


def _execute_chunk(job: SweepJob, index: int) -> MemoryExperimentResult:
    """Worker entry point (module-level so it pickles under every backend)."""
    return job.run_chunk(index)


def execute_chunk_with_stats(
    job: SweepJob, index: int
) -> Tuple[MemoryExperimentResult, Optional[Dict[str, int]]]:
    """Worker entry point that also surfaces the decoder's dispatch counters.

    The sweep service uses this variant so its telemetry layer can merge
    every worker's :class:`~repro.decoder.decoder.DecoderStats` (cache/LRU
    hits, artifact loads, APSP rebuilds) into the shared
    :class:`~repro.experiments.metrics.MetricsRegistry`.
    """
    shots = job.chunk_sizes()[index]
    rng = np.random.default_rng(job.chunk_seed(index))
    experiment = job.build_experiment(rng)
    result = experiment.run(shots)
    decoder_stats = (
        experiment.decoder.stats.as_dict() if experiment.decoder is not None else None
    )
    return result, decoder_stats


def warn_unseeded_cache(seed, cache_dir, resume: bool) -> None:
    """Warn when caching can never produce a hit across invocations.

    An unseeded plan draws fresh OS entropy every build, and a live
    ``Generator`` contributes a fresh draw from its stream; either way the
    derived entropy is part of each job's content address, so
    ``cache_dir``/``resume`` writes entries that no later invocation can
    reuse.  Only an explicit integer seed gives stable cache addresses.
    """
    if (cache_dir or resume) and (
        seed is None or isinstance(seed, np.random.Generator)
    ):
        warnings.warn(
            "sweep caching/resume without an explicit integer seed: every "
            "invocation derives fresh entropy, so cached results can never "
            "be reused across runs — pass a fixed seed to make the cache "
            "effective",
            UserWarning,
            stacklevel=3,
        )


@dataclass
class SweepStats:
    """What the last :meth:`SweepExecutor.run` actually did."""

    jobs_total: int = 0
    cache_hits: int = 0
    jobs_run: int = 0
    chunks_run: int = 0
    elapsed_seconds: float = 0.0
    #: Decoding-graph artifact entries built up-front before fan-out, or
    #: ``None`` when no pending job used an artifact store.
    artifacts_prebuilt: Optional[int] = None
    #: Chunks reused from the crash-recovery spill store instead of being
    #: re-executed (service restarts only; ``0`` everywhere else).
    chunks_recovered: int = 0
    #: Shots the sequential stopping rule skipped: the difference between
    #: each adaptively-stopped job's planned budget and the shots it
    #: actually needed to hit its Wilson-interval target.
    shots_saved: int = 0
    #: Jobs the stopping rule finalised before their full shot budget ran.
    jobs_stopped_early: int = 0

    def merge(self, other: "SweepStats") -> "SweepStats":
        """Accumulate another run's statistics into this one (returns self)."""
        self.jobs_total += other.jobs_total
        self.cache_hits += other.cache_hits
        self.jobs_run += other.jobs_run
        self.chunks_run += other.chunks_run
        self.elapsed_seconds += other.elapsed_seconds
        self.chunks_recovered += other.chunks_recovered
        self.shots_saved += other.shots_saved
        self.jobs_stopped_early += other.jobs_stopped_early
        if other.artifacts_prebuilt is not None:
            self.artifacts_prebuilt = (
                self.artifacts_prebuilt or 0
            ) + other.artifacts_prebuilt
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by the report's ``run_stats.json``)."""
        return {
            "jobs_total": self.jobs_total,
            "cache_hits": self.cache_hits,
            "jobs_run": self.jobs_run,
            "chunks_run": self.chunks_run,
            "elapsed_seconds": self.elapsed_seconds,
            "artifacts_prebuilt": self.artifacts_prebuilt,
            "chunks_recovered": self.chunks_recovered,
            "shots_saved": self.shots_saved,
            "jobs_stopped_early": self.jobs_stopped_early,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepStats":
        """Rebuild stats from :meth:`to_dict` (the service wire format)."""
        artifacts = payload.get("artifacts_prebuilt")
        return cls(
            jobs_total=int(payload.get("jobs_total", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            jobs_run=int(payload.get("jobs_run", 0)),
            chunks_run=int(payload.get("chunks_run", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            artifacts_prebuilt=None if artifacts is None else int(artifacts),
            chunks_recovered=int(payload.get("chunks_recovered", 0)),
            shots_saved=int(payload.get("shots_saved", 0)),
            jobs_stopped_early=int(payload.get("jobs_stopped_early", 0)),
        )

    def summary(self) -> str:
        text = (
            f"{self.jobs_total} job(s): {self.cache_hits} cached, "
            f"{self.jobs_run} executed ({self.chunks_run} chunk(s)) "
            f"in {self.elapsed_seconds:.2f}s"
        )
        if self.artifacts_prebuilt is not None:
            text += f", {self.artifacts_prebuilt} decoder artifact(s) prebuilt"
        if self.chunks_recovered:
            text += f", {self.chunks_recovered} chunk(s) recovered"
        if self.jobs_stopped_early:
            text += (
                f", {self.jobs_stopped_early} job(s) stopped early "
                f"({self.shots_saved} shot(s) saved)"
            )
        return text


def apply_decoder_artifact_dir(plan: SweepPlan, artifact_dir: Optional[str]) -> SweepPlan:
    """Give every job of ``plan`` the persistent decoder-artifact directory.

    Jobs that already carry their own directory keep it; ``None`` returns the
    plan unchanged.  Shared by the in-process executor and the sweep service.
    """
    if not artifact_dir:
        return plan
    return SweepPlan(
        [
            job if job.decoder_artifact_dir else replace(job, decoder_artifact_dir=artifact_dir)
            for job in plan.jobs
        ]
    )


class PlanExecution:
    """Chunk-granular bookkeeping for one plan — the shared execution core.

    Both sweep backends drive this object: the in-process
    :class:`SweepExecutor` feeds it chunk results from a loop or a
    ``ProcessPoolExecutor``, and the service scheduler
    (:mod:`repro.service.scheduler`) feeds it from its supervised worker
    pool.  Construction performs the cache lookup (cached jobs never produce
    tasks); :meth:`record_chunk` merges and persists each job the moment its
    last chunk lands, which is what makes interrupted sweeps resumable at
    job granularity.  Because chunk random streams are position-keyed
    (Section 6 seed discipline, see :mod:`repro.experiments.jobs`), the
    merged statistics are bit-identical no matter which backend, worker
    interleaving, or crash/retry history produced the chunks.

    When a :class:`~repro.experiments.metrics.MetricsRegistry` is supplied,
    cache and execution traffic is counted into it (``chunks_executed``,
    ``chunks_cached``, ``chunks_recovered``, ``sweep_jobs_completed``,
    ``sweep_jobs_cached``) so that a live telemetry snapshot reconciles
    exactly with :attr:`stats`: chunks executed plus chunks cached plus
    chunks recovered equals the plan's total chunk count.

    When a ``chunk_store`` is supplied (the sweep service's journal-backed
    crash-recovery mode), every executed chunk except a job's last is also
    spilled to it under a chunk-granular content address, and construction
    reloads any spilled chunks for still-pending jobs.  A service killed
    mid-job therefore resumes without re-executing the chunks that already
    landed — and because chunk streams are position-keyed, the recovered
    statistics are bit-identical to an uninterrupted run.  Spilled entries
    are deleted the moment their job's merged result persists.

    **Adaptive mode.**  Jobs carrying a Wilson-interval target
    (:func:`~repro.experiments.adaptive.job_adaptive_config`) switch the
    execution to a sequential stopping rule: backends must then dispatch
    work through :meth:`claim_tasks` (a chunk-index frontier) instead of
    the eager :attr:`tasks` list, and after every recorded chunk the rule
    looks for the smallest prefix length ``L >= min_chunks`` whose
    cumulative Wilson half-width meets the job's target.  When one exists
    the job finalises early: chunks ``0..L-1`` merge in a single
    :func:`merge_chunk_results` call (bit-identical to a fixed run of
    ``L * chunk_shots`` shots, by the position-keyed seed discipline) and
    the result persists under the *prefix job's* cache key
    (``replace(job, shots=L * chunk_shots)``), so a later fixed run of that
    prefix — or a warm adaptive rerun, which probes prefix keys during
    construction — is a pure cache hit.  The stop point depends only on
    the chunk statistics, never on arrival order or worker count;
    straggler chunks past the stop point are discarded on arrival.
    """

    def __init__(
        self,
        plan: SweepPlan,
        store: Optional[ResultStore] = None,
        metrics: Optional[MetricsRegistry] = None,
        chunk_store: Optional[ResultStore] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.metrics = metrics
        self.chunk_store = chunk_store
        self.stats = SweepStats(jobs_total=len(plan.jobs))
        self.results: List[Optional[MemoryExperimentResult]] = [None] * len(plan.jobs)
        self.pending: List[int] = []
        self._chunk_results: Dict[Tuple[int, int], MemoryExperimentResult] = {}
        self._remaining: Dict[int, int] = {}
        self._cached_chunks = 0
        self._recovered_chunks = 0
        self._skipped_chunks = 0
        self._adaptive: Dict[int, AdaptiveConfig] = {}
        self._merge_base: Dict[int, MemoryExperimentResult] = {}
        self._base_chunks: Dict[int, int] = {}
        self._next_chunk: Dict[int, int] = {}
        self._rr_cursor = 0
        for index, job in enumerate(plan.jobs):
            config = job_adaptive_config(job) if job.decode else None
            if config is not None:
                self._adaptive[index] = config
            cached = store.load(job.cache_key()) if store is not None else None
            if cached is not None:
                self.results[index] = cached
                self.stats.cache_hits += 1
                self._cached_chunks += job.num_chunks
                if metrics is not None:
                    metrics.counter("chunks_cached").inc(job.num_chunks)
                    metrics.counter("sweep_jobs_cached").inc()
                continue
            if config is not None and store is not None:
                prefix, length = self._probe_adaptive_prefix(job)
                if (
                    prefix is not None
                    and length >= config.min_chunks
                    and config.satisfied(prefix.logical_errors, prefix.shots)
                ):
                    # A previous adaptive run already stopped this job at
                    # ``length`` chunks and its interval still meets the
                    # target: a warm rerun is a pure cache hit.
                    self.results[index] = prefix
                    self.stats.cache_hits += 1
                    self.stats.shots_saved += job.shots - prefix.shots
                    self._cached_chunks += length
                    self._skipped_chunks += job.num_chunks - length
                    if metrics is not None:
                        metrics.counter("chunks_cached").inc(length)
                        metrics.counter("chunks_skipped").inc(job.num_chunks - length)
                        metrics.counter("sweep_jobs_cached").inc()
                    continue
                if prefix is not None:
                    # Cached prefix exists but no longer meets the (tighter)
                    # target: reuse it as the merge base and only simulate
                    # the chunks beyond it.  Counts are exact; merged LPR
                    # float means may differ from an uninterrupted run by
                    # final-rounding only.
                    self._merge_base[index] = prefix
                    self._base_chunks[index] = length
                    self._cached_chunks += length
                    if metrics is not None:
                        metrics.counter("chunks_cached").inc(length)
                    self.pending.append(index)
                    self._remaining[index] = job.num_chunks - length
                    self._next_chunk[index] = length
                    continue
            self.pending.append(index)
            self._remaining[index] = job.num_chunks
        self.stats.jobs_run = len(self.pending)
        if chunk_store is not None:
            self._recover_spilled_chunks()

    @property
    def adaptive_mode(self) -> bool:
        """True when any job carries a stopping-rule target.

        Backends must then dispatch via :meth:`claim_tasks` so that chunks
        past a job's (unknown-in-advance) stop point are never simulated.
        """
        return bool(self._adaptive)

    def _probe_adaptive_prefix(
        self, job: SweepJob
    ) -> Tuple[Optional[MemoryExperimentResult], int]:
        """Longest cached *prefix* of an adaptive job (result, chunk count).

        An earlier adaptive run that stopped ``job`` at ``L`` chunks saved
        its merged result under ``replace(job, shots=L * chunk_shots)`` —
        the same content address a fixed run of that many shots would use.
        Returns ``(None, 0)`` when no prefix is cached.
        """
        assert self.store is not None
        for length in range(job.num_chunks - 1, 0, -1):
            prefix_job = replace(job, shots=length * job.chunk_shots)
            cached = self.store.load(prefix_job.cache_key())
            if cached is not None:
                return cached, length
        return None, 0

    # ------------------------------------------------------------------
    def _chunk_key(self, job_index: int, chunk: int) -> str:
        """Content address of one chunk's spilled result.

        Derived from the owning job's full configuration (which already
        embeds the plan entropy and the job's spawn key) plus the chunk
        index, so a spilled chunk can only ever be recovered by the exact
        chunk of the exact job that produced it.
        """
        from repro.experiments.store import config_hash

        return config_hash(
            {"chunk": chunk, "chunk_of": self.plan.jobs[job_index].config_dict()}
        )

    def _recover_spilled_chunks(self) -> None:
        """Reload chunks spilled by a previous (crashed) service process."""
        assert self.chunk_store is not None
        for job_index in list(self.pending):
            for chunk in range(self.plan.jobs[job_index].num_chunks):
                spilled = self.chunk_store.load(self._chunk_key(job_index, chunk))
                if spilled is not None:
                    self.record_chunk(job_index, chunk, spilled, recovered=True)

    @property
    def tasks(self) -> List[Tuple[int, int]]:
        """Every (job index, chunk index) pair that still needs simulation."""
        return [
            (job_index, chunk)
            for job_index in self.pending
            if self.results[job_index] is None
            for chunk in range(self.plan.jobs[job_index].num_chunks)
            if (job_index, chunk) not in self._chunk_results
        ]

    def claim_tasks(self, limit: int = 1) -> List[Tuple[int, int]]:
        """Claim up to ``limit`` frontier chunks for execution (adaptive mode).

        Unlike :attr:`tasks` (which eagerly lists every chunk of every
        pending job), this hands out chunk indices incrementally,
        round-robin across unfinished jobs, so the shot budget flows to the
        jobs whose confidence intervals are still loose: a job that
        finalises early simply stops being claimable and the worker slots
        it would have occupied drain to the remaining jobs.  Chunks already
        recorded (recovered spills, duplicate retries) are skipped.
        """
        claimed: List[Tuple[int, int]] = []
        if limit <= 0:
            return claimed
        active = [index for index in self.pending if self.results[index] is None]
        if not active:
            return claimed
        start = self._rr_cursor % len(active)
        order = active[start:] + active[:start]
        progressed = True
        while len(claimed) < limit and progressed:
            progressed = False
            for job_index in order:
                if len(claimed) >= limit:
                    break
                if self.results[job_index] is not None:
                    continue
                job = self.plan.jobs[job_index]
                chunk = self._next_chunk.get(job_index, 0)
                while chunk < job.num_chunks and (job_index, chunk) in self._chunk_results:
                    chunk += 1
                if chunk >= job.num_chunks:
                    self._next_chunk[job_index] = chunk
                    continue
                self._next_chunk[job_index] = chunk + 1
                claimed.append((job_index, chunk))
                self._rr_cursor += 1
                progressed = True
        return claimed

    @property
    def is_complete(self) -> bool:
        return all(result is not None for result in self.results)

    @property
    def jobs_done(self) -> int:
        return sum(1 for result in self.results if result is not None)

    @property
    def chunks_done(self) -> int:
        """Chunks accounted for so far (cached jobs count all their chunks).

        Chunks the stopping rule skipped count as done — an early-stopped
        job is finished, and progress displays should reach 100%.
        """
        return (
            self.stats.chunks_run
            + self._cached_chunks
            + self._recovered_chunks
            + self._skipped_chunks
        )

    def prebuild_artifacts(self) -> None:
        """Build each pending decode job's decoder artifacts once, up-front."""
        artifact_jobs = [
            self.plan.jobs[index]
            for index in self.pending
            if self.plan.jobs[index].decoder_artifact_dir and self.plan.jobs[index].decode
        ]
        if not artifact_jobs:
            return
        from repro.decoder.artifacts import prebuild_job_artifacts

        self.stats.artifacts_prebuilt = prebuild_job_artifacts(artifact_jobs)

    def record_chunk(
        self,
        job_index: int,
        chunk: int,
        result: MemoryExperimentResult,
        recovered: bool = False,
    ) -> bool:
        """Account one executed chunk; returns True when its job completed.

        On job completion the chunks merge in fixed chunk order (so the
        arithmetic is backend-independent) and the merged result persists to
        the store immediately — a sweep killed later loses only unfinished
        jobs.  Duplicate deliveries of a chunk (a retried worker whose first
        attempt actually finished) are harmless: the rerun is bit-identical
        by seed discipline, and the chunk is only counted once.

        ``recovered=True`` marks a chunk reloaded from the crash-recovery
        spill store rather than freshly executed: it counts toward
        ``chunks_recovered`` instead of ``chunks_run``/``chunks_executed``.
        When a ``chunk_store`` is configured, every freshly-executed chunk
        except the job's last is spilled to it so a crash between job
        completions loses nothing already simulated.  (Adaptive jobs spill
        *every* chunk — the stop point isn't known in advance, so any chunk
        may turn out to be the last.)

        A chunk arriving after its job already finalised early (an
        in-flight straggler past the stop point) is counted as executed
        but otherwise discarded — the stopping rule's result depends only
        on the prefix.
        """
        if self.results[job_index] is not None or job_index not in self._remaining:
            # Job already finalised (adaptive early stop); straggler chunk.
            # Its slot was counted as skipped at finalise time — move it to
            # the executed/recovered column so chunks_done stays exact.
            self._skipped_chunks = max(0, self._skipped_chunks - 1)
            if recovered:
                self._recovered_chunks += 1
                self.stats.chunks_recovered += 1
                if self.metrics is not None:
                    self.metrics.counter("chunks_recovered").inc()
            else:
                self.stats.chunks_run += 1
                if self.metrics is not None:
                    self.metrics.counter("chunks_executed").inc()
                    self.metrics.counter("chunks_discarded").inc()
            return False
        duplicate = (job_index, chunk) in self._chunk_results
        self._chunk_results[(job_index, chunk)] = result
        if duplicate:
            return False
        if recovered:
            self._recovered_chunks += 1
            self.stats.chunks_recovered += 1
            if self.metrics is not None:
                self.metrics.counter("chunks_recovered").inc()
        else:
            self.stats.chunks_run += 1
            if self.metrics is not None:
                self.metrics.counter("chunks_executed").inc()
            if self.chunk_store is not None and (
                self._remaining[job_index] > 1 or job_index in self._adaptive
            ):
                self.chunk_store.save(self._chunk_key(job_index, chunk), result)
        self._remaining[job_index] -= 1
        if self._remaining[job_index] > 0:
            if job_index in self._adaptive:
                return self._maybe_finalize_early(job_index)
            return False
        if job_index in self._adaptive and self._maybe_finalize_early(job_index):
            return True
        del self._remaining[job_index]
        job = self.plan.jobs[job_index]
        base_chunks = self._base_chunks.pop(job_index, 0)
        parts: List[MemoryExperimentResult] = []
        if job_index in self._merge_base:
            parts.append(self._merge_base.pop(job_index))
        parts.extend(
            self._chunk_results.pop((job_index, c))
            for c in range(base_chunks, job.num_chunks)
        )
        merged = merge_chunk_results(parts)
        if self.store is not None:
            self.store.save(job.cache_key(), merged, config=job.config_dict())
        self.results[job_index] = merged
        if self.metrics is not None:
            self.metrics.counter("sweep_jobs_completed").inc()
        if self.chunk_store is not None:
            for spilled_chunk in range(job.num_chunks):
                self.chunk_store.remove(self._chunk_key(job_index, spilled_chunk))
        return True

    # -- adaptive stopping rule ----------------------------------------
    def _maybe_finalize_early(self, job_index: int) -> bool:
        """Apply the sequential stopping rule to ``job_index``.

        Scans prefix lengths over the *contiguous* recorded prefix and
        finalises at the smallest ``L >= min_chunks`` whose cumulative
        Wilson half-width meets the job's target.  Because the scan always
        walks lengths in ascending order over whatever prefix is contiguous
        so far, the chosen stop point is a pure function of the chunk
        statistics — independent of chunk arrival order and worker count.
        Returns True when the job finalised.
        """
        config = self._adaptive[job_index]
        if self.results[job_index] is not None:
            return False
        job = self.plan.jobs[job_index]
        base = self._merge_base.get(job_index)
        base_chunks = self._base_chunks.get(job_index, 0)
        cum_errors = max(base.logical_errors, 0) if base is not None else 0
        cum_shots = base.shots if base is not None else 0
        length = base_chunks
        while (job_index, length) in self._chunk_results:
            part = self._chunk_results[(job_index, length)]
            cum_errors += max(part.logical_errors, 0)
            cum_shots += part.shots
            length += 1
            if length >= job.num_chunks:
                break  # full job: the normal completion merge handles it
            if length < config.min_chunks:
                continue
            if config.satisfied(cum_errors, cum_shots):
                self._finalize_early(job_index, length, cum_errors, cum_shots)
                return True
        if self.metrics is not None and cum_shots > 0:
            self.metrics.gauge(f"ler_ci_halfwidth_job{job_index}").set(
                config.halfwidth(cum_errors, cum_shots)
            )
        return False

    def _finalize_early(
        self, job_index: int, length: int, errors: int, shots: int
    ) -> None:
        """Finalise an adaptive job at ``length`` chunks (< num_chunks).

        The prefix merges in one :func:`merge_chunk_results` call and is
        saved under the cache key of the equivalent *fixed* job
        (``replace(job, shots=length * chunk_shots)``): by the
        position-keyed seed discipline that fixed job would run exactly
        these chunks, so the truncated result is bit-identical to it and
        either run's cache entry serves the other.
        """
        job = self.plan.jobs[job_index]
        config = self._adaptive[job_index]
        base_chunks = self._base_chunks.pop(job_index, 0)
        parts: List[MemoryExperimentResult] = []
        if job_index in self._merge_base:
            parts.append(self._merge_base.pop(job_index))
        parts.extend(
            self._chunk_results.pop((job_index, c)) for c in range(base_chunks, length)
        )
        merged = merge_chunk_results(parts)
        prefix_shots = length * job.chunk_shots
        if self.store is not None:
            prefix_job = replace(job, shots=prefix_shots)
            self.store.save(
                prefix_job.cache_key(), merged, config=prefix_job.config_dict()
            )
        self.results[job_index] = merged
        del self._remaining[job_index]
        # Chunks past the stop point count as skipped — minus any that were
        # already executed out of order (pool stragglers), whose slots are
        # already in the executed column.
        skipped = job.num_chunks - length - sum(
            1
            for c in range(length, job.num_chunks)
            if (job_index, c) in self._chunk_results
        )
        self._skipped_chunks += skipped
        self.stats.shots_saved += job.shots - prefix_shots
        self.stats.jobs_stopped_early += 1
        if self.metrics is not None:
            self.metrics.counter("jobs_stopped_early").inc()
            self.metrics.counter("shots_saved").inc(job.shots - prefix_shots)
            self.metrics.counter("chunks_skipped").inc(skipped)
            self.metrics.counter("sweep_jobs_completed").inc()
            self.metrics.gauge(f"ler_ci_halfwidth_job{job_index}").set(
                config.halfwidth(errors, shots)
            )
        if self.chunk_store is not None:
            for spilled_chunk in range(job.num_chunks):
                self.chunk_store.remove(self._chunk_key(job_index, spilled_chunk))

    def finish(self, elapsed_seconds: float) -> SweepStats:
        """Stamp the elapsed time and return the final statistics."""
        self.stats.elapsed_seconds = elapsed_seconds
        return self.stats


class SweepExecutor:
    """Runs sweep plans serially or across a process pool, with caching.

    Args:
        jobs: Worker processes.  ``1`` (default) runs in-process; ``N > 1``
            fans chunks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
            Both backends yield identical statistics for the same plan.
        cache_dir: Directory for the content-addressed result store.  When
            set, completed jobs are saved there and future runs reuse them.
        resume: Reuse (and keep extending) the default cache directory when
            ``cache_dir`` is not given — the switch that lets an interrupted
            invocation pick up where it left off.
        store: Pre-built :class:`ResultStore` (overrides ``cache_dir``).
        decoder_artifact_dir: Persistent decoder-artifact store directory
            (:mod:`repro.decoder.artifacts`).  When set, every decode job in
            the plan inherits it (jobs that already carry their own keep it),
            and the executor pre-builds each unique decoding graph's tables
            *once* before fan-out so worker processes start artifact-warm
            instead of rebuilding APSP/frame tables N times.  Perf-only: job
            cache identity is unchanged.
        metrics: Optional :class:`~repro.experiments.metrics.MetricsRegistry`
            counting chunk/cache traffic and per-chunk latency (the same
            registry the sweep service snapshots over its API).
        adaptive: Optional :class:`~repro.experiments.adaptive.AdaptiveConfig`
            applied to every decode job in the plan (jobs carrying their own
            targets keep them).  Enables the sequential stopping rule: each
            job runs only until the Wilson interval on its logical error
            rate is tighter than the target, and the shot budget drains to
            the jobs whose intervals are still loose.  Perf-only: job cache
            identity is unchanged, and an early-stopped job's result is
            bit-identical to a fixed run of the prefix it executed.

    After :meth:`run`, :attr:`last_stats` reports cache hits and the number of
    chunks actually simulated (``0`` on a fully-cached rerun).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        resume: bool = False,
        store: Optional[ResultStore] = None,
        decoder_artifact_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        if store is None:
            root = cache_dir if cache_dir else (default_cache_dir() if resume else None)
            store = ResultStore(root) if root else None
        self.store = store
        self.decoder_artifact_dir = decoder_artifact_dir
        self.metrics = metrics
        self.adaptive = adaptive
        self.last_stats = SweepStats()

    # ------------------------------------------------------------------
    def run_job(self, job: SweepJob) -> MemoryExperimentResult:
        """Convenience wrapper: run a single job through the full machinery."""
        return self.run(SweepPlan([job]))[0]

    def run(self, plan: SweepPlan) -> List[MemoryExperimentResult]:
        """Execute ``plan`` and return results in plan order."""
        started = time.perf_counter()
        plan = apply_decoder_artifact_dir(plan, self.decoder_artifact_dir)
        plan = apply_adaptive(plan, self.adaptive)
        execution = PlanExecution(plan, store=self.store, metrics=self.metrics)
        # Build each unique decoding graph's APSP/frame tables once, here, so
        # the fan-out below (including every pool worker) loads them back as
        # shared memory maps instead of recomputing per process.
        execution.prebuild_artifacts()

        if execution.adaptive_mode:
            self._run_adaptive(plan, execution)
        else:
            tasks = execution.tasks
            if self.jobs > 1 and len(tasks) > 1:
                workers = min(self.jobs, len(tasks))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(_execute_chunk, plan.jobs[job_index], chunk): (job_index, chunk)
                        for job_index, chunk in tasks
                    }
                    for future in as_completed(futures):
                        job_index, chunk = futures[future]
                        execution.record_chunk(job_index, chunk, future.result())
            else:
                # tasks are job-major, so each job completes (and is saved)
                # before the next one starts.
                for job_index, chunk in tasks:
                    execution.record_chunk(
                        job_index, chunk, _execute_chunk(plan.jobs[job_index], chunk)
                    )

        self.last_stats = execution.finish(time.perf_counter() - started)
        return execution.results  # type: ignore[return-value]

    def _run_adaptive(self, plan: SweepPlan, execution: PlanExecution) -> None:
        """Drive an adaptive execution through its chunk frontier.

        Serial mode claims one chunk at a time, so a job executes exactly up
        to its stop point.  Pool mode keeps ``jobs`` chunks in flight and
        refills after every completion; up to ``jobs - 1`` straggler chunks
        past a stop point may execute and be discarded — the *recorded*
        statistics are unaffected (the stop point is arrival-order
        independent), only a bounded amount of surplus work is done.
        """
        if self.jobs > 1:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures: Dict[object, Tuple[int, int]] = {}

                def refill() -> None:
                    for job_index, chunk in execution.claim_tasks(
                        self.jobs - len(futures)
                    ):
                        future = pool.submit(_execute_chunk, plan.jobs[job_index], chunk)
                        futures[future] = (job_index, chunk)

                refill()
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        job_index, chunk = futures.pop(future)
                        execution.record_chunk(job_index, chunk, future.result())
                    refill()
        else:
            while True:
                claimed = execution.claim_tasks(1)
                if not claimed:
                    break
                job_index, chunk = claimed[0]
                execution.record_chunk(
                    job_index, chunk, _execute_chunk(plan.jobs[job_index], chunk)
                )
