"""Sweep execution backends: serial, multiprocess, cached, resumable.

The :class:`SweepExecutor` turns a :class:`~repro.experiments.jobs.SweepPlan`
into results.  Work is scheduled at *chunk* granularity — every job is split
into fixed-size shot chunks with independent, order-insensitive random
streams — so a pool stays saturated even when the sweep mixes one expensive
configuration with many cheap ones, and the serial backend (``jobs=1``)
produces bit-identical statistics by running exactly the same chunks through
exactly the same merge.

When a cache directory is configured, finished jobs are persisted to a
content-addressed :class:`~repro.experiments.store.ResultStore` and looked up
before any Monte-Carlo work is scheduled.  A rerun of the same sweep (same
configurations, same seed) therefore performs zero simulation, and a sweep
interrupted part-way resumes from the jobs already on disk.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.jobs import SweepJob, SweepPlan, merge_chunk_results
from repro.experiments.results import MemoryExperimentResult
from repro.experiments.store import ResultStore, default_cache_dir


def _execute_chunk(job: SweepJob, index: int) -> MemoryExperimentResult:
    """Worker entry point (module-level so it pickles under every backend)."""
    return job.run_chunk(index)


def warn_unseeded_cache(seed, cache_dir, resume: bool) -> None:
    """Warn when caching can never produce a hit across invocations.

    An unseeded plan draws fresh OS entropy every build, and a live
    ``Generator`` contributes a fresh draw from its stream; either way the
    derived entropy is part of each job's content address, so
    ``cache_dir``/``resume`` writes entries that no later invocation can
    reuse.  Only an explicit integer seed gives stable cache addresses.
    """
    if (cache_dir or resume) and (
        seed is None or isinstance(seed, np.random.Generator)
    ):
        warnings.warn(
            "sweep caching/resume without an explicit integer seed: every "
            "invocation derives fresh entropy, so cached results can never "
            "be reused across runs — pass a fixed seed to make the cache "
            "effective",
            UserWarning,
            stacklevel=3,
        )


@dataclass
class SweepStats:
    """What the last :meth:`SweepExecutor.run` actually did."""

    jobs_total: int = 0
    cache_hits: int = 0
    jobs_run: int = 0
    chunks_run: int = 0
    elapsed_seconds: float = 0.0
    #: Decoding-graph artifact entries built up-front before fan-out, or
    #: ``None`` when no pending job used an artifact store.
    artifacts_prebuilt: Optional[int] = None

    def merge(self, other: "SweepStats") -> "SweepStats":
        """Accumulate another run's statistics into this one (returns self)."""
        self.jobs_total += other.jobs_total
        self.cache_hits += other.cache_hits
        self.jobs_run += other.jobs_run
        self.chunks_run += other.chunks_run
        self.elapsed_seconds += other.elapsed_seconds
        if other.artifacts_prebuilt is not None:
            self.artifacts_prebuilt = (
                self.artifacts_prebuilt or 0
            ) + other.artifacts_prebuilt
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by the report's ``run_stats.json``)."""
        return {
            "jobs_total": self.jobs_total,
            "cache_hits": self.cache_hits,
            "jobs_run": self.jobs_run,
            "chunks_run": self.chunks_run,
            "elapsed_seconds": self.elapsed_seconds,
            "artifacts_prebuilt": self.artifacts_prebuilt,
        }

    def summary(self) -> str:
        text = (
            f"{self.jobs_total} job(s): {self.cache_hits} cached, "
            f"{self.jobs_run} executed ({self.chunks_run} chunk(s)) "
            f"in {self.elapsed_seconds:.2f}s"
        )
        if self.artifacts_prebuilt is not None:
            text += f", {self.artifacts_prebuilt} decoder artifact(s) prebuilt"
        return text


class SweepExecutor:
    """Runs sweep plans serially or across a process pool, with caching.

    Args:
        jobs: Worker processes.  ``1`` (default) runs in-process; ``N > 1``
            fans chunks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
            Both backends yield identical statistics for the same plan.
        cache_dir: Directory for the content-addressed result store.  When
            set, completed jobs are saved there and future runs reuse them.
        resume: Reuse (and keep extending) the default cache directory when
            ``cache_dir`` is not given — the switch that lets an interrupted
            invocation pick up where it left off.
        store: Pre-built :class:`ResultStore` (overrides ``cache_dir``).
        decoder_artifact_dir: Persistent decoder-artifact store directory
            (:mod:`repro.decoder.artifacts`).  When set, every decode job in
            the plan inherits it (jobs that already carry their own keep it),
            and the executor pre-builds each unique decoding graph's tables
            *once* before fan-out so worker processes start artifact-warm
            instead of rebuilding APSP/frame tables N times.  Perf-only: job
            cache identity is unchanged.

    After :meth:`run`, :attr:`last_stats` reports cache hits and the number of
    chunks actually simulated (``0`` on a fully-cached rerun).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        resume: bool = False,
        store: Optional[ResultStore] = None,
        decoder_artifact_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        if store is None:
            root = cache_dir if cache_dir else (default_cache_dir() if resume else None)
            store = ResultStore(root) if root else None
        self.store = store
        self.decoder_artifact_dir = decoder_artifact_dir
        self.last_stats = SweepStats()

    # ------------------------------------------------------------------
    def run_job(self, job: SweepJob) -> MemoryExperimentResult:
        """Convenience wrapper: run a single job through the full machinery."""
        return self.run(SweepPlan([job]))[0]

    def run(self, plan: SweepPlan) -> List[MemoryExperimentResult]:
        """Execute ``plan`` and return results in plan order."""
        started = time.perf_counter()
        if self.decoder_artifact_dir:
            plan = SweepPlan(
                [
                    job
                    if job.decoder_artifact_dir
                    else replace(job, decoder_artifact_dir=self.decoder_artifact_dir)
                    for job in plan.jobs
                ]
            )
        stats = SweepStats(jobs_total=len(plan.jobs))
        results: List[Optional[MemoryExperimentResult]] = [None] * len(plan.jobs)

        pending: List[int] = []
        for index, job in enumerate(plan.jobs):
            cached = self.store.load(job.cache_key()) if self.store is not None else None
            if cached is not None:
                results[index] = cached
                stats.cache_hits += 1
            else:
                pending.append(index)

        artifact_jobs = [
            plan.jobs[index]
            for index in pending
            if plan.jobs[index].decoder_artifact_dir and plan.jobs[index].decode
        ]
        if artifact_jobs:
            # Build each unique decoding graph's APSP/frame tables once, here,
            # so the fan-out below (including every pool worker) loads them
            # back as shared memory maps instead of recomputing per process.
            from repro.decoder.artifacts import prebuild_job_artifacts

            stats.artifacts_prebuilt = prebuild_job_artifacts(artifact_jobs)

        tasks: List[Tuple[int, int]] = [
            (job_index, chunk)
            for job_index in pending
            for chunk in range(plan.jobs[job_index].num_chunks)
        ]
        chunk_results: Dict[Tuple[int, int], MemoryExperimentResult] = {}
        remaining = {job_index: plan.jobs[job_index].num_chunks for job_index in pending}

        def complete_job(job_index: int) -> None:
            # Merge (fixed chunk order, so the arithmetic is backend-independent)
            # and persist immediately: a sweep killed later loses only the jobs
            # that had not finished, which is what makes --resume incremental.
            job = plan.jobs[job_index]
            merged = merge_chunk_results(
                [chunk_results.pop((job_index, chunk)) for chunk in range(job.num_chunks)]
            )
            if self.store is not None:
                self.store.save(job.cache_key(), merged, config=job.config_dict())
            results[job_index] = merged

        if self.jobs > 1 and len(tasks) > 1:
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_chunk, plan.jobs[job_index], chunk): (job_index, chunk)
                    for job_index, chunk in tasks
                }
                for future in as_completed(futures):
                    job_index, chunk = futures[future]
                    chunk_results[(job_index, chunk)] = future.result()
                    remaining[job_index] -= 1
                    if remaining[job_index] == 0:
                        complete_job(job_index)
        else:
            # tasks are job-major, so each job completes (and is saved) before
            # the next one starts.
            for job_index, chunk in tasks:
                chunk_results[(job_index, chunk)] = _execute_chunk(
                    plan.jobs[job_index], chunk
                )
                remaining[job_index] -= 1
                if remaining[job_index] == 0:
                    complete_job(job_index)

        stats.jobs_run = len(pending)
        stats.chunks_run = len(tasks)
        stats.elapsed_seconds = time.perf_counter() - started
        self.last_stats = stats
        return results  # type: ignore[return-value]
