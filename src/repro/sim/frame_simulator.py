"""Vectorised Pauli-frame simulator with leakage tracking.

The simulator tracks, for every physical qubit, an X-error bit, a Z-error bit
(the *Pauli frame*, i.e. the accumulated error relative to a noiseless
reference execution) and a boolean *leaked* flag.  Clifford gates propagate
the frame; noise channels flip frame bits stochastically; leakage is injected,
transported, and removed according to :class:`~repro.noise.leakage.LeakageModel`.

Measurement outcomes are reported as flips relative to the noiseless
reference, which is exactly what detector (parity-check comparison) logic
needs.  Measuring a leaked qubit yields a uniformly random outcome, matching
the paper's treatment of two-level discriminators; a multi-level discriminator
label (0, 1, or L) with classification error ``10p`` is reported alongside
every measurement so ERASER+M can be simulated without re-running circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.noise.leakage import LeakageModel, LeakageTransportModel
from repro.noise.model import NoiseParams
from repro.noise.profiles import QubitNoise, channel_active, draw_pauli_codes
from repro.sim.circuit import (
    Cnot,
    Hadamard,
    LeakISwap,
    LrcFinalize,
    Measure,
    MeasureReset,
    Operation,
    Reset,
    RoundNoise,
)
from repro.sim.rng import RngLike, make_rng

#: Multi-level discriminator label for the leaked state |L>.
LABEL_LEAKED = 2


@dataclass
class MeasurementRecord:
    """Result of one measurement operation.

    Attributes:
        qubits: Physical qubit indices that were measured, in order.
        bits: Measured bits (flips relative to the noiseless reference).
        labels: Multi-level discriminator labels (0, 1, or 2 == |L>), including
            classification error.
        true_leaked: Ground-truth leakage status at measurement time (used by
            the idealized Optimal policy and by the metrics machinery; never
            exposed to ERASER itself).
        meta: Arbitrary metadata attached by the schedule generator (typically
            the stabilizer indices measured by these qubits).
    """

    qubits: np.ndarray
    bits: np.ndarray
    labels: np.ndarray
    true_leaked: np.ndarray
    meta: tuple


class LeakageFrameSimulator:
    """Pauli-frame + leakage simulator for one Monte-Carlo shot.

    Args:
        num_qubits: Total number of physical qubits.
        noise: Circuit-level noise parameters — a scalar
            :class:`~repro.noise.model.NoiseParams` (the paper's uniform
            model and the fast path) or a per-qubit
            :class:`~repro.noise.profiles.QubitNoise` resolved from a
            :class:`~repro.noise.profiles.NoiseProfile`.
        leakage: Leakage model parameters.
        rng: Seed or numpy generator.
    """

    def __init__(
        self,
        num_qubits: int,
        noise: Union[NoiseParams, QubitNoise],
        leakage: LeakageModel,
        rng: RngLike = None,
    ):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        noise.validate()
        if isinstance(noise, QubitNoise) and noise.num_qubits != num_qubits:
            raise ValueError(
                f"per-qubit noise covers {noise.num_qubits} qubits, "
                f"but the simulator has {num_qubits}"
            )
        leakage.validate()
        self.num_qubits = num_qubits
        self.noise = noise
        self.leakage = leakage
        self.rng = make_rng(rng)
        self.x = np.zeros(num_qubits, dtype=bool)
        self.z = np.zeros(num_qubits, dtype=bool)
        self.leaked = np.zeros(num_qubits, dtype=bool)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, operations: Sequence[Operation]) -> Dict[str, MeasurementRecord]:
        """Execute a list of operations and return measurement records by key."""
        records: Dict[str, MeasurementRecord] = {}
        for op in operations:
            if isinstance(op, RoundNoise):
                self._round_noise(op.qubits)
            elif isinstance(op, Hadamard):
                self._hadamard(op.qubits)
            elif isinstance(op, Cnot):
                self._cnot(op.controls, op.targets)
            elif isinstance(op, Measure):
                records[op.key] = self._measure(op.qubits, op.meta)
            elif isinstance(op, MeasureReset):
                records[op.key] = self._measure(op.qubits, op.meta)
                self._reset(op.qubits)
            elif isinstance(op, Reset):
                self._reset(op.qubits)
            elif isinstance(op, LrcFinalize):
                records[op.key] = self._lrc_finalize(op)
            elif isinstance(op, LeakISwap):
                self._leak_iswap(op.data_qubits, op.ancillas)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported operation {type(op).__name__}")
        return records

    def leaked_fraction(self, qubits: Optional[Sequence[int]] = None) -> float:
        """Fraction of the given qubits (default: all) currently leaked."""
        if qubits is None:
            return float(self.leaked.mean())
        idx = np.asarray(qubits, dtype=np.int64)
        if idx.size == 0:
            return 0.0
        return float(self.leaked[idx].mean())

    def snapshot_leaked(self) -> np.ndarray:
        """Copy of the current per-qubit leakage flags."""
        return self.leaked.copy()

    # ------------------------------------------------------------------
    # Noise primitives
    # ------------------------------------------------------------------
    def _bernoulli(self, p: float, size: int) -> np.ndarray:
        if p <= 0.0 or size == 0:
            return np.zeros(size, dtype=bool)
        return self.rng.random(size) < p

    def _bernoulli_for(self, qubits: np.ndarray, p) -> np.ndarray:
        """Bernoulli draws over ``qubits`` with scalar or per-qubit ``p``.

        The scalar branch is the pre-profile code path, byte-for-byte: the
        per-qubit branch draws the same number of variates for the same
        qubits, so a uniform array reproduces the scalar stream exactly.
        """
        if not isinstance(p, np.ndarray):
            return self._bernoulli(p, qubits.size)
        if qubits.size == 0:
            return np.zeros(0, dtype=bool)
        local = p[qubits]
        if not local.any():
            return np.zeros(qubits.size, dtype=bool)
        return self.rng.random(qubits.size) < local

    _channel_active = staticmethod(channel_active)

    def _apply_pauli_codes(self, qubits: np.ndarray, codes: np.ndarray) -> None:
        """Apply Pauli errors encoded as 0=I, 1=X, 2=Y, 3=Z."""
        if qubits.size == 0:
            return
        self.x[qubits] ^= (codes == 1) | (codes == 2)
        self.z[qubits] ^= (codes == 3) | (codes == 2)

    def _pauli1_codes(self, size: int) -> np.ndarray:
        """Draw single-qubit error codes 1..3, biased when the profile says so."""
        return draw_pauli_codes(
            self.rng, getattr(self.noise, "pauli1_cdf", None), size, 3
        )

    def _pauli2_codes(self, size: int) -> np.ndarray:
        """Draw two-qubit error codes 1..15, biased when the profile says so."""
        return draw_pauli_codes(
            self.rng, getattr(self.noise, "pauli2_cdf", None), size, 15
        )

    def _depolarize1(self, qubits: np.ndarray, p) -> None:
        if qubits.size == 0 or not self._channel_active(p):
            return
        hit = self._bernoulli_for(qubits, p)
        victims = qubits[hit]
        if victims.size == 0:
            return
        codes = self._pauli1_codes(victims.size)
        self._apply_pauli_codes(victims, codes)

    def _depolarize2(self, controls: np.ndarray, targets: np.ndarray, p) -> None:
        if controls.size == 0 or not self._channel_active(p):
            return
        if isinstance(p, np.ndarray):
            # Per-qubit gate rates: a pair errs at the mean of its operands'
            # rates (the uniform model is the degenerate equal-rate case).
            pair_p = 0.5 * (p[controls] + p[targets])
            hit = self.rng.random(controls.size) < pair_p
        else:
            hit = self._bernoulli(p, controls.size)
        if not hit.any():
            return
        c = controls[hit]
        t = targets[hit]
        # Uniform (or profile-biased) over the 15 non-identity two-qubit Paulis.
        codes = self._pauli2_codes(c.size)
        self._apply_pauli_codes(c, codes // 4)
        self._apply_pauli_codes(t, codes % 4)

    def _random_pauli(self, qubits: np.ndarray) -> None:
        """Uniformly random Pauli (I, X, Y, Z) on each of the given qubits."""
        if qubits.size == 0:
            return
        codes = self.rng.integers(0, 4, size=qubits.size)
        self._apply_pauli_codes(qubits, codes)

    def _inject_leakage(self, qubits: np.ndarray, p: float) -> None:
        """Leak each (currently unleaked) qubit with probability ``p``."""
        if qubits.size == 0 or p <= 0.0:
            return
        candidates = qubits[~self.leaked[qubits]]
        if candidates.size == 0:
            return
        hit = self._bernoulli(p, candidates.size)
        self.leaked[candidates[hit]] = True

    def _return_to_computational(self, qubits: np.ndarray) -> None:
        """Return leaked qubits to the computational basis in a random state."""
        if qubits.size == 0:
            return
        self.leaked[qubits] = False
        self.x[qubits] = self.rng.random(qubits.size) < 0.5
        self.z[qubits] = self.rng.random(qubits.size) < 0.5

    # ------------------------------------------------------------------
    # Gate implementations
    # ------------------------------------------------------------------
    def _round_noise(self, qubits: np.ndarray) -> None:
        leaked = self.leaked[qubits]
        unleaked = qubits[~leaked]
        self._depolarize1(unleaked, self.noise.p_round_depolarize)
        self._inject_leakage(unleaked, self.leakage.p_leak_round)
        # Seepage: leaked qubits spontaneously return to the computational basis.
        leaked_qubits = qubits[leaked]
        if leaked_qubits.size and self.leakage.p_seepage > 0.0:
            seep = self._bernoulli(self.leakage.p_seepage, leaked_qubits.size)
            self._return_to_computational(leaked_qubits[seep])

    def _hadamard(self, qubits: np.ndarray) -> None:
        ok = qubits[~self.leaked[qubits]]
        if ok.size:
            tmp = self.x[ok].copy()
            self.x[ok] = self.z[ok]
            self.z[ok] = tmp
            self._depolarize1(ok, self.noise.p_gate1)

    def _cnot(self, controls: np.ndarray, targets: np.ndarray) -> None:
        if controls.size == 0:
            return
        leaked_c = self.leaked[controls]
        leaked_t = self.leaked[targets]
        both_ok = ~leaked_c & ~leaked_t

        # Normal frame propagation and gate noise on fully unleaked pairs.
        cc = controls[both_ok]
        tt = targets[both_ok]
        if cc.size:
            self.x[tt] ^= self.x[cc]
            self.z[cc] ^= self.z[tt]
            self._depolarize2(cc, tt, self.noise.p_gate2)

        # Interaction between a leaked and an unleaked operand: the unleaked
        # qubit suffers a random Pauli and may acquire leakage via transport.
        one_leaked = leaked_c ^ leaked_t
        if one_leaked.any():
            sources = np.where(leaked_c[one_leaked], controls[one_leaked], targets[one_leaked])
            receivers = np.where(leaked_c[one_leaked], targets[one_leaked], controls[one_leaked])
            self._random_pauli(receivers)
            transported = self._bernoulli(self.leakage.p_transport, receivers.size)
            if transported.any():
                newly_leaked = receivers[transported]
                self.leaked[newly_leaked] = True
                if self.leakage.transport_model is LeakageTransportModel.EXCHANGE:
                    self._return_to_computational(sources[transported])

        # Operation-induced leakage injection on currently unleaked operands.
        self._inject_leakage(controls, self.leakage.p_leak_gate)
        self._inject_leakage(targets, self.leakage.p_leak_gate)

    def _measure(self, qubits: np.ndarray, meta: tuple) -> MeasurementRecord:
        """Measure the given qubits in the Z basis.

        Error-application order (pinned by ``tests/test_frame_simulator.py``;
        the batched engine must match it exactly):

        1. the raw bit is the X-frame flip relative to the reference;
        2. the classical measurement error flips it with ``p_measure``;
        3. a leaked qubit's bit is then *overwritten* with a uniformly random
           outcome (the two-level discriminator cannot classify |L>), so the
           classical ``p_measure`` flip is **not** re-applied on top of it —
           leaked-qubit bits are uniform regardless of ``p_measure``;
        4. multi-level labels are derived from the post-overwrite bits (with
           |L> for truly leaked qubits) and then suffer the ``10p``
           classification error;
        5. measurement collapses the phase frame of the measured qubits.
        """
        true_leaked = self.leaked[qubits].copy()
        bits = self.x[qubits].copy()
        # Classical measurement error.
        bits ^= self._bernoulli_for(qubits, self.noise.p_measure)
        # A two-level discriminator classifies a leaked qubit randomly; this
        # overwrites (never XORs with) the classical-error bit from above.
        if true_leaked.any():
            random_bits = self.rng.random(int(true_leaked.sum())) < 0.5
            bits[true_leaked] = random_bits
        labels = bits.astype(np.int8)
        labels[true_leaked] = LABEL_LEAKED
        # Multi-level discriminator classification error (rate 10p): report one
        # of the two incorrect labels uniformly at random.
        p_ml = self.noise.p_multilevel_readout_error
        if self._channel_active(p_ml):
            wrong = self._bernoulli_for(qubits, p_ml)
            if wrong.any():
                shift = self.rng.integers(1, 3, size=int(wrong.sum())).astype(np.int8)
                labels[wrong] = (labels[wrong] + shift) % 3
        # Measurement collapses phase information relative to the reference.
        self.z[qubits] = False
        return MeasurementRecord(
            qubits=qubits.copy(),
            bits=bits.astype(np.uint8),
            labels=labels.astype(np.uint8),
            true_leaked=true_leaked,
            meta=meta,
        )

    def _reset(self, qubits: np.ndarray) -> None:
        self.x[qubits] = False
        self.z[qubits] = False
        self.leaked[qubits] = False
        # Initialisation error: qubit prepared in |1> instead of |0>.
        flips = self._bernoulli_for(qubits, self.noise.p_reset)
        self.x[qubits[flips]] = True

    def _lrc_finalize(self, op: LrcFinalize) -> MeasurementRecord:
        record = self._measure(op.data_qubits, op.meta)
        # The reset removes whatever leakage the data qubit carried; the parked
        # data state lives on the parity qubit and is about to be swapped back.
        self._reset(op.data_qubits)
        if op.adaptive_multilevel:
            leaked_label = record.labels == LABEL_LEAKED
        else:
            leaked_label = np.zeros(op.data_qubits.size, dtype=bool)
        swap_back = ~leaked_label
        d_back = op.data_qubits[swap_back]
        a_back = op.ancillas[swap_back]
        if d_back.size:
            # Two-CNOT swap-back (valid because the data-side qubit is in |0>).
            self._cnot(a_back, d_back)
            self._cnot(d_back, a_back)
            # The parity qubit physically ends in |0>; the residual phase frame
            # it would carry in the frame formalism is unphysical, so clear it.
            self.z[a_back] = False
        # ERASER+M QSG modification: when the measurement reports |L>, squash
        # the swap-back and reset the parity qubit instead (Section 4.6.2).
        d_squash = op.data_qubits[leaked_label]
        a_squash = op.ancillas[leaked_label]
        if a_squash.size:
            self._reset(a_squash)
            # The parked data state is lost; the data qubit is freshly reset,
            # which relative to the reference amounts to a random Pauli.
            self._random_pauli(d_squash)
        return record

    def _leak_iswap(self, data_qubits: np.ndarray, ancillas: np.ndarray) -> None:
        """DQLR LeakageISWAP: move data-qubit leakage onto reset parity qubits."""
        if data_qubits.size == 0:
            return
        leaked_d = self.leaked[data_qubits]
        leaked_a = self.leaked[ancillas]
        # Gate infidelity comparable to a CX: two-qubit depolarising noise on
        # pairs where both operands are in the computational basis.
        both_ok = ~leaked_d & ~leaked_a
        self._depolarize2(data_qubits[both_ok], ancillas[both_ok], self.noise.p_gate2)
        # Leakage moves from the data qubit to the parity qubit.
        move = leaked_d & ~leaked_a
        if move.any():
            moved_d = data_qubits[move]
            moved_a = ancillas[move]
            self.leaked[moved_a] = True
            self._return_to_computational(moved_d)
        # Failure mode: if the preceding parity reset failed (parity in |1>),
        # the LeakageISWAP can excite the data qubit to |L> (|11> <-> |20>).
        reset_failed = self.x[ancillas] & ~self.leaked[ancillas] & ~self.leaked[data_qubits]
        if reset_failed.any():
            excite = self._bernoulli(
                self.leakage.dqlr_reset_excitation, int(reset_failed.sum())
            )
            victims = data_qubits[reset_failed][excite]
            self.leaked[victims] = True
        # Operation-induced leakage, as for any two-qubit gate.
        self._inject_leakage(data_qubits, self.leakage.p_leak_gate)
        self._inject_leakage(ancillas, self.leakage.p_leak_gate)
