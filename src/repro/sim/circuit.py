"""Lightweight circuit intermediate representation (Section 6 methodology).

Rounds of syndrome extraction are expressed as short lists of vectorised
operations.  Each operation acts on arrays of qubit indices so the simulator
can process an entire layer of gates with a handful of numpy calls regardless
of code distance.  The QEC Schedule Generator (:mod:`repro.core.qsg`) emits
these operations; the :class:`~repro.sim.frame_simulator.LeakageFrameSimulator`
consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple, Union

import numpy as np

IndexArray = Union[Sequence[int], np.ndarray]


def _as_index_array(indices: IndexArray) -> np.ndarray:
    arr = np.asarray(indices, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("qubit index arrays must be one-dimensional")
    return arr


@dataclass
class Operation:
    """Base class for all circuit operations."""


@dataclass
class RoundNoise(Operation):
    """Start-of-round idling noise on the given qubits.

    Applies single-qubit depolarising noise, environment-induced leakage
    injection, and seepage, per the error model in Section 5.2.
    """

    qubits: np.ndarray

    def __init__(self, qubits: IndexArray):
        self.qubits = _as_index_array(qubits)


@dataclass
class Hadamard(Operation):
    """A layer of Hadamard gates (used to prepare/unprepare X-type ancillas)."""

    qubits: np.ndarray

    def __init__(self, qubits: IndexArray):
        self.qubits = _as_index_array(qubits)


@dataclass
class Cnot(Operation):
    """A layer of CNOT gates acting on disjoint (control, target) pairs."""

    controls: np.ndarray
    targets: np.ndarray

    def __init__(self, controls: IndexArray, targets: IndexArray):
        self.controls = _as_index_array(controls)
        self.targets = _as_index_array(targets)
        if self.controls.shape != self.targets.shape:
            raise ValueError("controls and targets must have the same length")
        combined = np.concatenate([self.controls, self.targets])
        if len(np.unique(combined)) != len(combined):
            raise ValueError("CNOT layer must act on disjoint qubit pairs")


@dataclass
class Measure(Operation):
    """Z-basis measurement of the given qubits (no reset).

    Results are recorded under ``key``.  ``meta`` is carried through untouched
    so callers can attach, e.g., the stabilizer indices being measured.
    """

    qubits: np.ndarray
    key: str
    meta: Tuple[int, ...] = field(default_factory=tuple)

    def __init__(self, qubits: IndexArray, key: str, meta: Sequence[int] = ()):
        self.qubits = _as_index_array(qubits)
        self.key = key
        self.meta = tuple(meta)


@dataclass
class Reset(Operation):
    """Reset the given qubits to |0> (removes leakage, may suffer init error)."""

    qubits: np.ndarray

    def __init__(self, qubits: IndexArray):
        self.qubits = _as_index_array(qubits)


@dataclass
class MeasureReset(Operation):
    """Measurement immediately followed by a reset (standard ancilla readout)."""

    qubits: np.ndarray
    key: str
    meta: Tuple[int, ...] = field(default_factory=tuple)

    def __init__(self, qubits: IndexArray, key: str, meta: Sequence[int] = ()):
        self.qubits = _as_index_array(qubits)
        self.key = key
        self.meta = tuple(meta)


@dataclass
class LrcFinalize(Operation):
    """The tail of a SWAP leakage reduction circuit.

    At this point the data qubit and its parity partner have already been
    swapped; this operation measures the data-side physical qubit (which now
    holds the parity outcome), resets it (removing any leakage the data qubit
    carried) and then swaps the parked data state back with two CNOTs.

    When ``adaptive_multilevel`` is True the ERASER+M modification of the QEC
    Schedule Generator (Section 4.6.2) is applied: if the measured qubit is
    classified as leaked, the swap-back is squashed and the parity qubit is
    reset instead.
    """

    data_qubits: np.ndarray
    ancillas: np.ndarray
    key: str
    meta: Tuple[int, ...] = field(default_factory=tuple)
    adaptive_multilevel: bool = False

    def __init__(
        self,
        data_qubits: IndexArray,
        ancillas: IndexArray,
        key: str,
        meta: Sequence[int] = (),
        adaptive_multilevel: bool = False,
    ):
        self.data_qubits = _as_index_array(data_qubits)
        self.ancillas = _as_index_array(ancillas)
        if self.data_qubits.shape != self.ancillas.shape:
            raise ValueError("data_qubits and ancillas must have the same length")
        self.key = key
        self.meta = tuple(meta)
        self.adaptive_multilevel = adaptive_multilevel


@dataclass
class LeakISwap(Operation):
    """Google's DQLR LeakageISWAP between data qubits and (reset) parity qubits.

    Moves leakage from each data qubit onto its parity partner.  If the
    preceding parity reset failed (parity in |1>), the operation can excite the
    data qubit into a leaked state instead (Appendix A.2, Figure 19(b)).
    """

    data_qubits: np.ndarray
    ancillas: np.ndarray

    def __init__(self, data_qubits: IndexArray, ancillas: IndexArray):
        self.data_qubits = _as_index_array(data_qubits)
        self.ancillas = _as_index_array(ancillas)
        if self.data_qubits.shape != self.ancillas.shape:
            raise ValueError("data_qubits and ancillas must have the same length")
