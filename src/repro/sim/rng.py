"""Random number generation helpers (Section 6 Monte-Carlo methodology).

All stochastic components of the reproduction accept either an integer seed or
an existing :class:`numpy.random.Generator`; :func:`make_rng` normalises both
forms so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a numpy random generator from a seed, generator, or ``None``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list:
    """Derive ``count`` independent generators from a base seed.

    Used to give each Monte-Carlo shot (or each worker in a sweep) its own
    stream so results do not depend on execution order.
    """
    base = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in base.spawn(count)]
