"""Bit-packing and sparse-sampling primitives for the packed engine.

The packed Monte-Carlo engine (:mod:`repro.sim.packed_frame_simulator`)
stores each frame plane as ``(ceil(shots / 64), num_qubits)`` uint64 words —
shot ``s`` lives in word ``s >> 6`` at bit ``s & 63`` — so every gate is a
handful of word-wide XOR/AND operations over 64 shots at once.  This module
holds the supporting primitives:

* :func:`pack_bool` / :func:`unpack_words` — the boundary converters between
  boolean ``(shots, n)`` matrices and word planes (little-endian bit and
  byte order, matching the host byte order on the supported platforms);
* :func:`fair_words` — uniformly random uint64 words, i.e. 64 independent
  fair bits per word, for the probability-1/2 draws (random Pauli frames,
  leaked-measurement outcomes);
* :func:`sample_cells` — the sparse Bernoulli sampler: instead of drawing a
  float per (shot, qubit) cell as the batched engine does, draw the *count*
  of hits from the exact binomial and place them on a uniformly random
  distinct cell subset.  Per-qubit rate arrays are honoured by sampling at
  the maximum rate and thinning, which keeps the per-cell distribution
  exact.  At the circuit-level rates the paper sweeps (``p ~ 1e-3``) this
  touches thousands of cells instead of millions.

Every sampler here is distribution-exact: cells are hit independently with
their stated probabilities, which is what the statistical-equivalence
contract between the three engines rests on.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

#: uint64 word width and the shift/mask splitting a shot index into
#: (word row, bit position).
WORD_BITS = 64
WORD_SHIFT = 6
WORD_MASK = 63

_UINT64_MAX = np.uint64(np.iinfo(np.uint64).max)

#: Single-bit masks indexed by bit position — a 64-entry gather is cheaper
#: than shifting per element for the large instance batches.
_BIT_MASKS = np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64)


def num_words(shots: int) -> int:
    """Word rows needed to carry ``shots`` bits per column."""
    return (int(shots) + WORD_MASK) >> WORD_SHIFT


def pack_bool(matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(shots, n)`` matrix into ``(num_words(shots), n)`` uint64.

    Bit ``s & 63`` of word row ``s >> 6`` carries shot ``s``; tail bits of
    the final word row (shot indices ``>= shots``) are zero.
    """
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    shots, n = matrix.shape
    rows = num_words(shots)
    pad = rows * WORD_BITS - shots
    if pad:
        matrix = np.concatenate(
            [matrix, np.zeros((pad, n), dtype=bool)], axis=0
        )
    as_bytes = np.packbits(matrix, axis=0, bitorder="little")  # (rows * 8, n)
    as_bytes = np.ascontiguousarray(
        as_bytes.reshape(rows, 8, n).transpose(0, 2, 1)
    )
    return as_bytes.view(np.uint64).reshape(rows, n)


def unpack_words(words: np.ndarray, shots: int) -> np.ndarray:
    """Inverse of :func:`pack_bool`: word plane back to a bool ``(shots, n)``."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    rows, n = words.shape
    as_bytes = words.view(np.uint8).reshape(rows, n, 8)
    as_bytes = np.ascontiguousarray(as_bytes.transpose(0, 2, 1)).reshape(
        rows * 8, n
    )
    bits = np.unpackbits(as_bytes, axis=0, bitorder="little")
    return bits[:shots].astype(bool)


def fair_words(rng: np.random.Generator, shape) -> np.ndarray:
    """Uniformly random uint64 words: 64 independent fair bits per word."""
    return rng.integers(_UINT64_MAX, size=shape, dtype=np.uint64, endpoint=True)


def bit_positions(shots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split shot indices into (word row, single-bit uint64 mask) pairs."""
    shots = np.asarray(shots, dtype=np.int64)
    return shots >> WORD_SHIFT, _BIT_MASKS[shots & WORD_MASK]


def sample_distinct(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """A uniformly random ``k``-subset of ``range(n)`` (unsorted).

    For the sparse regime (``k << n``) this draws with replacement and keeps
    the first ``k`` distinct values — the sequence of *distinct* values from
    an iid uniform stream is exactly sampling without replacement — so the
    cost is ``O(k)``, independent of ``n``.  Dense requests fall back to a
    permutation.
    """
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    if k * 8 >= n:
        return rng.permutation(n)[:k].astype(np.int64)
    chosen = np.empty(0, dtype=np.int64)
    need = k
    while need > 0:
        draw = rng.integers(0, n, size=need + (need >> 3) + 16, dtype=np.int64)
        pool = np.concatenate([chosen, draw])
        _, first = np.unique(pool, return_index=True)
        # Keep first-appearance order so the prefix is exactly the first k
        # distinct values of the stream.
        chosen = pool[np.sort(first)][:k]
        need = k - chosen.size
    return chosen


def sample_cells(
    rng: np.random.Generator,
    shots: int,
    ncols: int,
    p: Union[float, np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Cells of a ``(shots, ncols)`` grid hit by independent Bernoulli draws.

    Returns parallel ``(row, col)`` int64 arrays, one entry per hit cell, in
    no particular order.  ``p`` is a scalar rate or a per-column ``(ncols,)``
    array.  The sampler is exact: the hit count follows the binomial over
    all cells and the hit set is uniform given the count (per-column arrays
    sample at the maximum rate and thin, preserving per-cell independence).
    """
    if shots <= 0 or ncols <= 0:
        return _NO_CELLS
    if isinstance(p, np.ndarray):
        p_max = float(p.max())
        if p_max <= 0.0:
            return _NO_CELLS
        rows, cols = _sample_uniform_cells(rng, shots, ncols, p_max)
        if float(p.min()) != p_max:
            keep = rng.random(rows.size) < (p[cols] / p_max)
            rows, cols = rows[keep], cols[keep]
        return rows, cols
    if p <= 0.0:
        return _NO_CELLS
    return _sample_uniform_cells(rng, shots, ncols, float(p))


def _sample_uniform_cells(
    rng: np.random.Generator, shots: int, ncols: int, p: float
) -> Tuple[np.ndarray, np.ndarray]:
    n = shots * ncols
    if p >= 1.0:
        cells = np.arange(n, dtype=np.int64)
    else:
        k = int(rng.binomial(n, p))
        if k == 0:
            return _NO_CELLS
        cells = sample_distinct(rng, n, k)
    # Cell id = col * shots + row keeps each column a contiguous id block.
    return cells % shots, cells // shots


_NO_CELLS = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
