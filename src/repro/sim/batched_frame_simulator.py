"""Batched (multi-shot) Pauli-frame simulator with leakage tracking.

The production engine behind the Section 6 Monte-Carlo evaluation.

The scalar :class:`~repro.sim.frame_simulator.LeakageFrameSimulator` executes
one Monte-Carlo shot at a time, which leaves the Python interpreter — not
numpy — as the bottleneck of every sweep.  This module provides the batched
engine: all frames are carried as ``(shots, num_qubits)`` boolean arrays and
every operation of the circuit IR (:mod:`repro.sim.circuit`) is vectorised
across the shot axis, so a round of syndrome extraction costs the same small
number of numpy calls regardless of how many shots are in flight.

Statistical contract
--------------------
The batched engine draws its random numbers in a different order than the
scalar engine, so individual shots differ bit-for-bit between the two even
under a shared seed.  The *distribution* of every observable is identical:
each error mechanism is applied with the same probability, conditioned on the
same per-qubit state, in the same sequence of operations.  Deterministic
(noise-free) circuits produce exactly equal outputs on both engines.
``tests/test_batched_equivalence.py`` enforces both halves of this contract.

Row-subset and instance execution
---------------------------------
Adaptive LRC policies give different shots different schedules within one
round.  Two mechanisms keep that vectorised:

* ``run(..., shots_sel=rows)`` executes an operation list over a row subset
  of the frame arrays (shots outside the subset are untouched);
* the ``*_instances`` methods act on *pair instances* — parallel 1-D arrays
  ``(shot, data qubit, ancilla)``, one entry per scheduled LRC in the whole
  batch.  Within one shot the scheduled pairs are disjoint, so every
  ``(shot, qubit)`` cell is unique and ordinary fancy indexing applies; the
  per-round cost is a fixed handful of numpy calls no matter how many
  distinct per-shot assignments the policy produced.

Internally every gate is written against an arbitrary numpy index expression
(a broadcast ``(rows, columns)`` mesh for 2-D blocks, a
``(shot_array, qubit_array)`` pair for 1-D instance sets), so both forms
share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.noise.leakage import LeakageModel, LeakageTransportModel
from repro.noise.model import NoiseParams
from repro.noise.profiles import QubitNoise, channel_active, draw_pauli_codes
from repro.sim.circuit import (
    Cnot,
    Hadamard,
    LeakISwap,
    LrcFinalize,
    Measure,
    MeasureReset,
    Operation,
    Reset,
    RoundNoise,
)
from repro.sim.frame_simulator import LABEL_LEAKED
from repro.sim.rng import RngLike, make_rng


def _mesh(rows: np.ndarray, qubits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Broadcast index pair selecting the (rows x qubits) block of a frame."""
    return rows[:, np.newaxis], qubits


@dataclass
class BatchedMeasurementRecord:
    """Result of one measurement operation across every shot in the batch.

    Attributes:
        qubits: Physical qubit indices that were measured, in order.
        bits: ``(shots, len(qubits))`` measured bits (flips relative to the
            noiseless reference).
        labels: ``(shots, len(qubits))`` multi-level discriminator labels
            (0, 1, or 2 == |L>), including classification error.
        true_leaked: ``(shots, len(qubits))`` ground-truth leakage status at
            measurement time.
        meta: Arbitrary metadata attached by the schedule generator (typically
            the stabilizer indices measured by these qubits).
    """

    qubits: np.ndarray
    bits: np.ndarray
    labels: np.ndarray
    true_leaked: np.ndarray
    meta: tuple


class BatchedLeakageFrameSimulator:
    """Pauli-frame + leakage simulator for many Monte-Carlo shots at once.

    Semantically equivalent to running ``shots`` independent
    :class:`~repro.sim.frame_simulator.LeakageFrameSimulator` instances, but
    every noise channel, gate, and measurement acts on 2-D ``(shots, qubits)``
    arrays in a handful of numpy calls.

    Args:
        num_qubits: Total number of physical qubits per shot.
        noise: Circuit-level noise parameters shared by all shots — a scalar
            :class:`~repro.noise.model.NoiseParams` (the uniform fast path)
            or a per-qubit :class:`~repro.noise.profiles.QubitNoise`; the
            per-qubit rates broadcast along the shot axis.
        leakage: Leakage model parameters (shared by all shots).
        shots: Number of Monte-Carlo shots carried by the frame arrays.
        rng: Seed or numpy generator; a single stream serves the whole batch.
    """

    def __init__(
        self,
        num_qubits: int,
        noise: Union[NoiseParams, QubitNoise],
        leakage: LeakageModel,
        shots: int,
        rng: RngLike = None,
    ):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if shots <= 0:
            raise ValueError("shots must be positive")
        noise.validate()
        if isinstance(noise, QubitNoise) and noise.num_qubits != num_qubits:
            raise ValueError(
                f"per-qubit noise covers {noise.num_qubits} qubits, "
                f"but the simulator has {num_qubits}"
            )
        leakage.validate()
        self.num_qubits = num_qubits
        self.shots = shots
        self.noise = noise
        self.leakage = leakage
        self.rng = make_rng(rng)
        self.x = np.zeros((shots, num_qubits), dtype=bool)
        self.z = np.zeros((shots, num_qubits), dtype=bool)
        self.leaked = np.zeros((shots, num_qubits), dtype=bool)
        self._all_rows = np.arange(shots, dtype=np.int64)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        operations: Sequence[Operation],
        shots_sel: Optional[np.ndarray] = None,
    ) -> Dict[str, BatchedMeasurementRecord]:
        """Execute operations on all shots (or a row subset) and return records.

        Args:
            operations: The circuit IR operation list for (part of) a round.
            shots_sel: Optional 1-D array of shot indices to execute on; the
                remaining shots are untouched.  Record arrays then have
                ``len(shots_sel)`` rows, ordered like ``shots_sel``.
        """
        rows = self._all_rows if shots_sel is None else np.asarray(shots_sel, dtype=np.int64)
        records: Dict[str, BatchedMeasurementRecord] = {}
        for op in operations:
            if isinstance(op, RoundNoise):
                self._round_noise(rows, op.qubits)
            elif isinstance(op, Hadamard):
                self._hadamard(rows, op.qubits)
            elif isinstance(op, Cnot):
                self._cnot_ix(_mesh(rows, op.controls), _mesh(rows, op.targets))
            elif isinstance(op, Measure):
                records[op.key] = self._measure_record(rows, op.qubits, op.meta)
            elif isinstance(op, MeasureReset):
                records[op.key] = self._measure_record(rows, op.qubits, op.meta)
                self._reset_ix(_mesh(rows, op.qubits))
            elif isinstance(op, Reset):
                self._reset_ix(_mesh(rows, op.qubits))
            elif isinstance(op, LrcFinalize):
                records[op.key] = self._lrc_finalize(rows, op)
            elif isinstance(op, LeakISwap):
                self._leak_iswap_ix(
                    _mesh(rows, op.data_qubits), _mesh(rows, op.ancillas)
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported operation {type(op).__name__}")
        return records

    def leaked_at(self, qubits: Sequence[int]) -> np.ndarray:
        """Ground-truth leakage for the given qubits as bool ``(shots, k)``.

        The engine-agnostic accessor the harness uses (the packed engine
        cannot expose a sliceable boolean ``leaked`` attribute directly).
        """
        idx = np.asarray(qubits, dtype=np.int64)
        return self.leaked[:, idx]

    def leaked_fraction(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-shot fraction of the given qubits (default: all) currently leaked.

        Returns a ``(shots,)`` float array; each entry lies in ``[0, 1]``.
        """
        if qubits is None:
            return self.leaked.mean(axis=1)
        idx = np.asarray(qubits, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(self.shots)
        return self.leaked[:, idx].mean(axis=1)

    def snapshot_leaked(self) -> np.ndarray:
        """Copy of the current ``(shots, num_qubits)`` leakage flags."""
        return self.leaked.copy()

    # ------------------------------------------------------------------
    # Instance API (one entry per scheduled LRC pair across the batch)
    # ------------------------------------------------------------------
    def swap_instances(
        self, shot_idx: np.ndarray, data_qubits: np.ndarray, ancillas: np.ndarray
    ) -> None:
        """Three-CNOT SWAP on per-shot (data, ancilla) pair instances."""
        if shot_idx.size == 0:
            return
        ix_d = (shot_idx, data_qubits)
        ix_a = (shot_idx, ancillas)
        self._cnot_ix(ix_d, ix_a)
        self._cnot_ix(ix_a, ix_d)
        self._cnot_ix(ix_d, ix_a)

    def lrc_finalize_instances(
        self,
        shot_idx: np.ndarray,
        data_qubits: np.ndarray,
        ancillas: np.ndarray,
        adaptive_multilevel: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """SWAP-LRC tail on pair instances; returns 1-D (bits, labels, leaked).

        Semantics mirror :class:`~repro.sim.circuit.LrcFinalize`: measure the
        data-side qubit (which now holds the parity outcome), reset it, swap
        the parked data state back — unless ``adaptive_multilevel`` is set and
        the measurement reported |L>, in which case the swap-back is squashed
        and the parity qubit is reset instead (ERASER+M, Section 4.6.2).
        """
        ix_d = (shot_idx, data_qubits)
        bits, labels, true_leaked = self._measure_ix(ix_d)
        self._reset_ix(ix_d)
        if adaptive_multilevel:
            leaked_label = labels == LABEL_LEAKED
        else:
            leaked_label = np.zeros(shot_idx.shape, dtype=bool)
        back = ~leaked_label
        s_b, d_b, a_b = shot_idx[back], data_qubits[back], ancillas[back]
        if s_b.size:
            # Two-CNOT swap-back (valid because the data-side qubit is in |0>).
            self._cnot_ix((s_b, a_b), (s_b, d_b))
            self._cnot_ix((s_b, d_b), (s_b, a_b))
            # The parity qubit physically ends in |0>; the residual phase frame
            # it would carry in the frame formalism is unphysical, so clear it.
            self.z[s_b, a_b] = False
        if leaked_label.any():
            squash = leaked_label
            s_q, d_q, a_q = shot_idx[squash], data_qubits[squash], ancillas[squash]
            self._reset_ix((s_q, a_q))
            # The parked data state is lost; the data qubit is freshly reset,
            # which relative to the reference amounts to a random Pauli.
            self._random_pauli_masked((s_q, d_q), np.ones(s_q.shape, dtype=bool))
        return bits, labels, true_leaked

    def leak_iswap_instances(
        self, shot_idx: np.ndarray, data_qubits: np.ndarray, ancillas: np.ndarray
    ) -> None:
        """DQLR LeakageISWAP on per-shot (data, ancilla) pair instances."""
        if shot_idx.size == 0:
            return
        self._leak_iswap_ix((shot_idx, data_qubits), (shot_idx, ancillas))

    def reset_instances(self, shot_idx: np.ndarray, qubits: np.ndarray) -> None:
        """Reset per-shot qubit instances to |0>."""
        if shot_idx.size == 0:
            return
        self._reset_ix((shot_idx, qubits))

    def measure_reset_masked(
        self,
        qubits: np.ndarray,
        meta: tuple,
        active: np.ndarray,
    ) -> BatchedMeasurementRecord:
        """Measure-and-reset the given qubits only where ``active`` is set.

        Used by the batched harness to measure each shot's *main* parity
        qubits while leaving the per-shot LRC'd ancillas (which hold parked
        data states) untouched; record cells where ``active`` is False carry
        draws from the random stream but no state was touched there, and the
        caller overwrites them with the LRC measurement results.
        """
        rows = self._all_rows
        ix = _mesh(rows, qubits)
        bits, labels, true_leaked = self._measure_ix(ix, collapse=active)
        self._reset_ix(ix, active=active)
        return BatchedMeasurementRecord(
            qubits=qubits.copy(),
            bits=bits,
            labels=labels,
            true_leaked=true_leaked,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Noise primitives (shape-agnostic: act through any index expression)
    # ------------------------------------------------------------------
    def _bernoulli(self, p, shape) -> np.ndarray:
        """Bernoulli draws of ``shape`` with scalar or per-cell ``p``.

        A per-cell ``p`` (from a gathered per-qubit channel array) must
        broadcast against ``shape``; the scalar branch is the pre-profile
        code path, byte-for-byte, so uniform configurations keep their
        seeded random stream.
        """
        if isinstance(p, np.ndarray):
            if not p.any():
                return np.zeros(shape, dtype=bool)
            return self.rng.random(shape) < p
        if p <= 0.0:
            return np.zeros(shape, dtype=bool)
        return self.rng.random(shape) < p

    _channel_active = staticmethod(channel_active)

    @staticmethod
    def _gather(p, ix):
        """Per-cell rates for an index expression (scalar rates pass through).

        Both index forms carry the qubit component in ``ix[1]`` — a 1-D qubit
        array for broadcast ``(rows, qubits)`` meshes and for per-shot
        instance sets alike — so ``p[ix[1]]`` broadcasts against the cell
        block either way.
        """
        if isinstance(p, np.ndarray):
            return p[ix[1]]
        return p

    def _pauli1_codes(self, shape) -> np.ndarray:
        """Draw single-qubit error codes 1..3, biased when the profile says so."""
        return draw_pauli_codes(
            self.rng, getattr(self.noise, "pauli1_cdf", None), shape, 3
        )

    def _pauli2_codes(self, shape) -> np.ndarray:
        """Draw two-qubit error codes 1..15, biased when the profile says so."""
        return draw_pauli_codes(
            self.rng, getattr(self.noise, "pauli2_cdf", None), shape, 15
        )

    def _pauli_flips(self, codes: np.ndarray):
        """X/Z flip masks for Pauli codes 0=I, 1=X, 2=Y, 3=Z."""
        return (codes == 1) | (codes == 2), (codes == 3) | (codes == 2)

    def _depolarize1_masked(self, ix, mask: np.ndarray, p) -> None:
        """Single-qubit depolarising noise on the cells where ``mask`` is set."""
        if not self._channel_active(p) or not mask.any():
            return
        hit = self._bernoulli(self._gather(p, ix), mask.shape) & mask
        codes = self._pauli1_codes(mask.shape)
        xf, zf = self._pauli_flips(codes)
        self.x[ix] ^= hit & xf
        self.z[ix] ^= hit & zf

    def _depolarize2_masked(self, ix_c, ix_t, mask: np.ndarray, p) -> None:
        """Correlated two-qubit depolarising noise on masked (control, target) pairs."""
        if not self._channel_active(p) or not mask.any():
            return
        if isinstance(p, np.ndarray):
            # Per-qubit gate rates: a pair errs at the mean of its operands'
            # rates (the uniform model is the degenerate equal-rate case).
            pair_p = 0.5 * (self._gather(p, ix_c) + self._gather(p, ix_t))
        else:
            pair_p = p
        hit = self._bernoulli(pair_p, mask.shape) & mask
        # Uniform (or profile-biased) over the 15 non-identity two-qubit Paulis.
        codes = self._pauli2_codes(mask.shape)
        cxf, czf = self._pauli_flips(codes // 4)
        txf, tzf = self._pauli_flips(codes % 4)
        self.x[ix_c] ^= hit & cxf
        self.z[ix_c] ^= hit & czf
        self.x[ix_t] ^= hit & txf
        self.z[ix_t] ^= hit & tzf

    def _random_pauli_masked(self, ix, mask: np.ndarray) -> None:
        """Uniformly random Pauli (I, X, Y, Z) on the cells where ``mask`` is set."""
        if not mask.any():
            return
        codes = self.rng.integers(0, 4, size=mask.shape)
        xf, zf = self._pauli_flips(codes)
        self.x[ix] ^= mask & xf
        self.z[ix] ^= mask & zf

    def _inject_leakage_masked(self, ix, mask: Optional[np.ndarray], p: float) -> None:
        """Leak each currently-unleaked cell (where ``mask`` allows) with prob ``p``."""
        if p <= 0.0:
            return
        unleaked = ~self.leaked[ix]
        if mask is not None:
            unleaked &= mask
        hit = self._bernoulli(p, unleaked.shape) & unleaked
        self.leaked[ix] |= hit

    def _return_to_computational_masked(self, ix, mask: np.ndarray) -> None:
        """Return masked leaked cells to the computational basis in a random state."""
        if not mask.any():
            return
        self.leaked[ix] &= ~mask
        rand_x = self.rng.random(mask.shape) < 0.5
        rand_z = self.rng.random(mask.shape) < 0.5
        self.x[ix] = np.where(mask, rand_x, self.x[ix])
        self.z[ix] = np.where(mask, rand_z, self.z[ix])

    # ------------------------------------------------------------------
    # Gate implementations
    # ------------------------------------------------------------------
    def _round_noise(self, rows: np.ndarray, qubits: np.ndarray) -> None:
        ix = _mesh(rows, qubits)
        leaked = self.leaked[ix]
        self._depolarize1_masked(ix, ~leaked, self.noise.p_round_depolarize)
        self._inject_leakage_masked(ix, None, self.leakage.p_leak_round)
        # Seepage: leaked qubits spontaneously return to the computational basis.
        if self.leakage.p_seepage > 0.0 and leaked.any():
            seep = self._bernoulli(self.leakage.p_seepage, leaked.shape) & leaked
            self._return_to_computational_masked(ix, seep)

    def _hadamard(self, rows: np.ndarray, qubits: np.ndarray) -> None:
        ix = _mesh(rows, qubits)
        ok = ~self.leaked[ix]
        if not ok.any():
            return
        xv = self.x[ix]
        zv = self.z[ix]
        self.x[ix] = np.where(ok, zv, xv)
        self.z[ix] = np.where(ok, xv, zv)
        self._depolarize1_masked(ix, ok, self.noise.p_gate1)

    def _cnot_ix(self, ix_c, ix_t, active: Optional[np.ndarray] = None) -> None:
        leaked_c = self.leaked[ix_c]
        leaked_t = self.leaked[ix_t]
        if leaked_c.size == 0:
            return
        both_ok = ~leaked_c & ~leaked_t
        if active is not None:
            both_ok &= active

        # Normal frame propagation and gate noise on fully unleaked pairs.
        self.x[ix_t] ^= self.x[ix_c] & both_ok
        self.z[ix_c] ^= self.z[ix_t] & both_ok
        self._depolarize2_masked(ix_c, ix_t, both_ok, self.noise.p_gate2)

        # Interaction between a leaked and an unleaked operand: the unleaked
        # qubit suffers a random Pauli and may acquire leakage via transport.
        recv_is_target = leaked_c & ~leaked_t
        recv_is_control = leaked_t & ~leaked_c
        if active is not None:
            recv_is_target &= active
            recv_is_control &= active
        one_leaked = recv_is_target | recv_is_control
        if one_leaked.any():
            # At most one operand of a pair is a receiver, so the same code
            # draw can serve whichever side needs it.
            codes = self.rng.integers(0, 4, size=one_leaked.shape)
            xf, zf = self._pauli_flips(codes)
            self.x[ix_t] ^= xf & recv_is_target
            self.z[ix_t] ^= zf & recv_is_target
            self.x[ix_c] ^= xf & recv_is_control
            self.z[ix_c] ^= zf & recv_is_control
            transported = (
                self._bernoulli(self.leakage.p_transport, one_leaked.shape) & one_leaked
            )
            if transported.any():
                self.leaked[ix_t] |= transported & recv_is_target
                self.leaked[ix_c] |= transported & recv_is_control
                if self.leakage.transport_model is LeakageTransportModel.EXCHANGE:
                    # The source returns to the computational basis: the source
                    # is the control when the target received, and vice versa.
                    self._return_to_computational_masked(
                        ix_c, transported & recv_is_target
                    )
                    self._return_to_computational_masked(
                        ix_t, transported & recv_is_control
                    )

        # Operation-induced leakage injection on currently unleaked operands.
        self._inject_leakage_masked(ix_c, active, self.leakage.p_leak_gate)
        self._inject_leakage_masked(ix_t, active, self.leakage.p_leak_gate)

    def _measure_ix(
        self, ix, collapse: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Measure the indexed cells; returns (bits, labels, true_leaked).

        ``collapse`` restricts the phase-frame collapse (and hence the actual
        measurement back-action) to a subset of cells; bits for the remaining
        cells are still drawn but the state there is untouched.
        """
        true_leaked = self.leaked[ix].copy()
        shape = true_leaked.shape
        bits = self.x[ix].copy()
        # Error-application order (pinned by the regression tests, identical to
        # the scalar engine): the classical p_measure flip is applied first and
        # is then *overwritten* — not re-applied — by the uniformly random
        # outcome that a two-level discriminator reports for a leaked qubit.
        bits ^= self._bernoulli(self._gather(self.noise.p_measure, ix), shape)
        if true_leaked.any():
            random_bits = self.rng.random(shape) < 0.5
            bits = np.where(true_leaked, random_bits, bits)
        labels = bits.astype(np.int8)
        labels[true_leaked] = LABEL_LEAKED
        # Multi-level discriminator classification error (rate 10p): report one
        # of the two incorrect labels uniformly at random.
        p_ml = self.noise.p_multilevel_readout_error
        if self._channel_active(p_ml):
            wrong = self._bernoulli(self._gather(p_ml, ix), shape)
            if wrong.any():
                shift = self.rng.integers(1, 3, size=shape).astype(np.int8)
                labels = np.where(wrong, (labels + shift) % 3, labels)
        # Measurement collapses phase information relative to the reference.
        if collapse is None:
            self.z[ix] = False
        else:
            self.z[ix] &= ~collapse
        return bits.astype(np.uint8), labels.astype(np.uint8), true_leaked

    def _measure_record(
        self, rows: np.ndarray, qubits: np.ndarray, meta: tuple
    ) -> BatchedMeasurementRecord:
        bits, labels, true_leaked = self._measure_ix(_mesh(rows, qubits))
        return BatchedMeasurementRecord(
            qubits=qubits.copy(),
            bits=bits,
            labels=labels,
            true_leaked=true_leaked,
            meta=meta,
        )

    def _reset_ix(self, ix, active: Optional[np.ndarray] = None) -> None:
        shape = self.leaked[ix].shape
        # Initialisation error: qubit prepared in |1> instead of |0>.
        flips = self._bernoulli(self._gather(self.noise.p_reset, ix), shape)
        if active is None:
            self.x[ix] = flips
            self.z[ix] = False
            self.leaked[ix] = False
        else:
            self.x[ix] = np.where(active, flips, self.x[ix])
            self.z[ix] &= ~active
            self.leaked[ix] &= ~active

    def _lrc_finalize(self, rows: np.ndarray, op: LrcFinalize) -> BatchedMeasurementRecord:
        # Expand the (rows x pairs) block into pair instances so the IR path
        # and the instance path share one implementation.
        n_pairs = op.data_qubits.size
        shot_idx = np.repeat(rows, n_pairs)
        data_qubits = np.tile(op.data_qubits, rows.size)
        ancillas = np.tile(op.ancillas, rows.size)
        bits, labels, true_leaked = self.lrc_finalize_instances(
            shot_idx, data_qubits, ancillas,
            adaptive_multilevel=op.adaptive_multilevel,
        )
        shape = (rows.size, n_pairs)
        return BatchedMeasurementRecord(
            qubits=op.data_qubits.copy(),
            bits=bits.reshape(shape),
            labels=labels.reshape(shape),
            true_leaked=true_leaked.reshape(shape),
            meta=op.meta,
        )

    def _leak_iswap_ix(self, ix_d, ix_a) -> None:
        """DQLR LeakageISWAP: move data-qubit leakage onto reset parity qubits."""
        leaked_d = self.leaked[ix_d]
        if leaked_d.size == 0:
            return
        leaked_a = self.leaked[ix_a]
        # Gate infidelity comparable to a CX: two-qubit depolarising noise on
        # pairs where both operands are in the computational basis.
        both_ok = ~leaked_d & ~leaked_a
        self._depolarize2_masked(ix_d, ix_a, both_ok, self.noise.p_gate2)
        # Leakage moves from the data qubit to the parity qubit.
        move = leaked_d & ~leaked_a
        if move.any():
            self.leaked[ix_a] |= move
            self._return_to_computational_masked(ix_d, move)
        # Failure mode: if the preceding parity reset failed (parity in |1>),
        # the LeakageISWAP can excite the data qubit to |L> (|11> <-> |20>).
        reset_failed = self.x[ix_a] & ~self.leaked[ix_a] & ~self.leaked[ix_d]
        if reset_failed.any():
            excite = (
                self._bernoulli(self.leakage.dqlr_reset_excitation, reset_failed.shape)
                & reset_failed
            )
            self.leaked[ix_d] |= excite
        # Operation-induced leakage, as for any two-qubit gate.
        self._inject_leakage_masked(ix_d, None, self.leakage.p_leak_gate)
        self._inject_leakage_masked(ix_a, None, self.leakage.p_leak_gate)
