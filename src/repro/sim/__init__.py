"""Leakage-aware stabilizer-circuit simulation.

The paper extends Google's Stim with leakage errors.  Stim itself has no
leakage support (and is not available in this offline environment), so this
subpackage provides a from-scratch, numpy-vectorised Pauli-frame simulator
that tracks, per physical qubit, an X/Z error frame plus a leakage flag.  The
simulator executes the lightweight circuit IR defined in
:mod:`repro.sim.circuit` and implements the circuit-level noise and leakage
model of Section 5.2 of the paper.
"""

from repro.sim.circuit import (
    Cnot,
    Hadamard,
    LeakISwap,
    LrcFinalize,
    Measure,
    MeasureReset,
    Operation,
    Reset,
    RoundNoise,
)
from repro.sim.frame_simulator import LeakageFrameSimulator, MeasurementRecord
from repro.sim.rng import make_rng

__all__ = [
    "Operation",
    "RoundNoise",
    "Hadamard",
    "Cnot",
    "Measure",
    "MeasureReset",
    "Reset",
    "LrcFinalize",
    "LeakISwap",
    "LeakageFrameSimulator",
    "MeasurementRecord",
    "make_rng",
]
