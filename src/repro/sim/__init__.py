"""Leakage-aware stabilizer-circuit simulation.

The paper extends Google's Stim with leakage errors.  Stim itself has no
leakage support (and is not available in this offline environment), so this
subpackage provides a from-scratch, numpy-vectorised Pauli-frame simulator
that tracks, per physical qubit, an X/Z error frame plus a leakage flag.  The
simulator executes the lightweight circuit IR defined in
:mod:`repro.sim.circuit` and implements the circuit-level noise and leakage
model of Section 5.2 of the paper.

Three engines share that IR:

* :class:`~repro.sim.frame_simulator.LeakageFrameSimulator` — the scalar
  reference engine; one Monte-Carlo shot per instance, frames are
  ``(num_qubits,)`` boolean arrays.
* :class:`~repro.sim.batched_frame_simulator.BatchedLeakageFrameSimulator` —
  the batched engine; frames are ``(shots, num_qubits)`` arrays and every
  operation is vectorised across the shot axis, which removes the Python
  interpreter from the Monte-Carlo hot path.
* :class:`~repro.sim.packed_frame_simulator.PackedLeakageFrameSimulator` —
  the packed engine; frames are ``(ceil(shots / 64), num_qubits)`` uint64
  words (64 shots per word), gates are word-wide XOR/AND kernels, and noise
  is sampled sparsely (binomial hit counts on random distinct cells), so
  per-channel work scales with the expected number of errors instead of
  with ``shots``.

The experiment harness (:class:`~repro.experiments.memory.MemoryExperiment`)
selects between them via its ``engine`` argument (``"auto"`` uses the packed
engine for large vectorisable runs and the batched engine for smaller ones,
whenever the scheduling policy supports vectorised decisions, which all
built-in policies do) and sizes the batches with ``batch_size``.  The
engines draw random numbers in different orders, so they are *statistically*
— not bitwise — equivalent; noise-free circuits produce exactly equal output
on all of them.  ``tests/test_batched_equivalence.py`` enforces this
contract.
"""

from repro.sim.batched_frame_simulator import (
    BatchedLeakageFrameSimulator,
    BatchedMeasurementRecord,
)
from repro.sim.circuit import (
    Cnot,
    Hadamard,
    LeakISwap,
    LrcFinalize,
    Measure,
    MeasureReset,
    Operation,
    Reset,
    RoundNoise,
)
from repro.sim.frame_simulator import LeakageFrameSimulator, MeasurementRecord
from repro.sim.packed_frame_simulator import PackedLeakageFrameSimulator
from repro.sim.rng import make_rng

__all__ = [
    "Operation",
    "RoundNoise",
    "Hadamard",
    "Cnot",
    "Measure",
    "MeasureReset",
    "Reset",
    "LrcFinalize",
    "LeakISwap",
    "LeakageFrameSimulator",
    "MeasurementRecord",
    "BatchedLeakageFrameSimulator",
    "BatchedMeasurementRecord",
    "PackedLeakageFrameSimulator",
    "make_rng",
]
