"""Bit-packed (64 shots per word) Pauli-frame simulator with leakage tracking.

The third Monte-Carlo engine behind the paper's Section 5 evaluation
sweeps, built for the 10k+ shot runs where the ERASER paper's own
methodology (10M-100M shots per configuration) is approached.  The
batched engine carries frames as
``(shots, num_qubits)`` boolean arrays and draws one float per (shot, qubit)
cell for every noise channel, so its cost scales with ``shots`` even though
almost every draw is a miss at circuit-level rates.  This engine packs the
same three planes — X frame, Z frame, leakage flag — into
``(ceil(shots / 64), num_qubits)`` uint64 words (stim-style: shot ``s`` is
bit ``s & 63`` of word row ``s >> 6``) and implements every circuit
operation as word-wide XOR/AND kernels:

* deterministic gate action (CNOT propagation, Hadamard frame swap, resets,
  measurement reads) is a handful of uint64 ops per qubit column, covering
  64 shots per instruction;
* noise channels are sampled *sparsely*: the hit count comes from the exact
  binomial over all (shot, qubit) cells and the hits land on a uniformly
  random distinct cell subset (:func:`repro.sim.packed_bits.sample_cells`),
  so the work per channel is proportional to the expected number of errors,
  not to ``shots``;
* probability-1/2 draws (random Pauli frames for leaked-qubit interactions,
  two-level readout of a leaked qubit) use uniformly random uint64 words —
  64 fair bits per draw.

Frames stay packed across the whole round; the engine unpacks only at the
syndrome-extraction boundary, where measurement records, leakage-population
fractions, and ground-truth leakage cross into the (unpacked) decoder and
policy layers.  The public API mirrors
:class:`~repro.sim.batched_frame_simulator.BatchedLeakageFrameSimulator`
(including the ``*_instances`` methods the harness drives per-shot LRC tails
through), and records are returned as the same
:class:`~repro.sim.batched_frame_simulator.BatchedMeasurementRecord` type.

Statistical contract
--------------------
As with scalar-vs-batched, the packed engine draws its random numbers in a
different order (and through different samplers) than the other two, so
per-shot outcomes differ bit-for-bit under a shared seed.  Every error
mechanism still fires independently per cell with the same probability,
conditioned on the same per-qubit state, in the same operation order, so all
observable distributions are identical; noise-free circuits produce exactly
equal output on all three engines.  ``tests/test_batched_equivalence.py``
and ``tests/test_packed_simulator.py`` enforce the contract.

Per-qubit :class:`~repro.noise.profiles.QubitNoise` arrays broadcast into
the packed kernels by thinning: sparse sampling runs at the per-channel
maximum rate and keeps each hit with probability ``rate[qubit] / max_rate``,
which is exact per cell.  Degenerate arrays (all qubits equal) collapse to
the scalar path at construction time, so they consume the identical random
stream as a plain ``NoiseParams`` — the same bit-identity guarantee the
other engines make.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.noise.leakage import LeakageModel, LeakageTransportModel
from repro.noise.model import NoiseParams
from repro.noise.profiles import QubitNoise, channel_active, draw_pauli_codes
from repro.sim.batched_frame_simulator import BatchedMeasurementRecord
from repro.sim.circuit import (
    Cnot,
    Hadamard,
    LeakISwap,
    LrcFinalize,
    Measure,
    MeasureReset,
    Operation,
    Reset,
    RoundNoise,
)
from repro.sim.frame_simulator import LABEL_LEAKED
from repro.sim.packed_bits import (
    bit_positions,
    fair_words,
    num_words,
    pack_bool,
    sample_cells,
    unpack_words,
)
from repro.sim.rng import RngLike, make_rng

_ZERO = np.uint64(0)


def _flag_masks(masks: np.ndarray, flags: np.ndarray) -> np.ndarray:
    """Single-bit masks where ``flags`` is set, zero words elsewhere."""
    return np.where(flags, masks, _ZERO)


def _pauli_flips(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """X/Z flip flags for Pauli codes 0=I, 1=X, 2=Y, 3=Z."""
    return (codes == 1) | (codes == 2), (codes == 3) | (codes == 2)


class PackedLeakageFrameSimulator:
    """Pauli-frame + leakage simulator over bit-packed multi-shot planes.

    Semantically equivalent to ``shots`` independent scalar simulators (and
    to the batched engine); see the module docstring for the packing layout
    and the statistical contract.

    Args:
        num_qubits: Total number of physical qubits per shot.
        noise: Circuit-level noise parameters shared by all shots — a scalar
            :class:`~repro.noise.model.NoiseParams` or a per-qubit
            :class:`~repro.noise.profiles.QubitNoise` (consumed by thinning,
            see module docstring).
        leakage: Leakage model parameters (shared by all shots).
        shots: Number of Monte-Carlo shots carried by the packed planes.
        rng: Seed or numpy generator; a single stream serves the whole batch.
    """

    def __init__(
        self,
        num_qubits: int,
        noise: Union[NoiseParams, QubitNoise],
        leakage: LeakageModel,
        shots: int,
        rng: RngLike = None,
    ):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if shots <= 0:
            raise ValueError("shots must be positive")
        noise.validate()
        if isinstance(noise, QubitNoise) and noise.num_qubits != num_qubits:
            raise ValueError(
                f"per-qubit noise covers {noise.num_qubits} qubits, "
                f"but the simulator has {num_qubits}"
            )
        leakage.validate()
        self.num_qubits = num_qubits
        self.shots = shots
        self.noise = noise
        self.leakage = leakage
        self.rng = make_rng(rng)
        self.words = num_words(shots)
        # Invariant: bits for shot indices >= shots (the tail of the last
        # word row) are zero in all three planes at operation boundaries.
        self.x = np.zeros((self.words, num_qubits), dtype=np.uint64)
        self.z = np.zeros((self.words, num_qubits), dtype=np.uint64)
        self.leaked = np.zeros((self.words, num_qubits), dtype=np.uint64)
        self._w_index = np.arange(self.words, dtype=np.int64)[:, np.newaxis]
        self._p_round = self._as_channel(noise.p_round_depolarize)
        self._p_gate1 = self._as_channel(noise.p_gate1)
        self._p_gate2 = self._as_channel(noise.p_gate2)
        self._p_measure = self._as_channel(noise.p_measure)
        self._p_reset = self._as_channel(noise.p_reset)
        self._p_multilevel = self._as_channel(noise.p_multilevel_readout_error)
        self._pauli1_cdf = getattr(noise, "pauli1_cdf", None)
        self._pauli2_cdf = getattr(noise, "pauli2_cdf", None)

    @staticmethod
    def _as_channel(value):
        """Collapse degenerate per-qubit arrays to the scalar fast path.

        A profile whose per-qubit rates are all equal must consume the same
        random stream as the plain scalar model (no thinning draws), so
        seeded degenerate-profile runs stay bit-identical to uniform ones.
        """
        if isinstance(value, np.ndarray):
            if value.size and float(value.min()) == float(value.max()):
                return float(value.flat[0])
            return value
        return float(value)

    @staticmethod
    def _rate(p, cols: np.ndarray):
        """Channel rate(s) at the given qubit columns (scalars pass through)."""
        if isinstance(p, np.ndarray):
            return p[cols]
        return p

    # ------------------------------------------------------------------
    # Public API (mirrors BatchedLeakageFrameSimulator)
    # ------------------------------------------------------------------
    def run(
        self,
        operations: Sequence[Operation],
        shots_sel: Optional[np.ndarray] = None,
    ) -> Dict[str, BatchedMeasurementRecord]:
        """Execute operations on all shots and return measurement records.

        The packed engine has no row-subset execution (``shots_sel``): the
        harness drives per-shot divergence through the ``*_instances`` API
        instead, which is how adaptive LRC tails stay word-parallel.
        """
        if shots_sel is not None:
            raise NotImplementedError(
                "the packed engine does not execute row subsets; "
                "use the *_instances methods for per-shot schedules"
            )
        records: Dict[str, BatchedMeasurementRecord] = {}
        for op in operations:
            if isinstance(op, RoundNoise):
                self._round_noise(op.qubits)
            elif isinstance(op, Hadamard):
                self._hadamard(op.qubits)
            elif isinstance(op, Cnot):
                self._cnot_cols(op.controls, op.targets)
            elif isinstance(op, Measure):
                records[op.key] = self._measure_record(op.qubits, op.meta)
            elif isinstance(op, MeasureReset):
                records[op.key] = self._measure_record(op.qubits, op.meta)
                self._reset_cols(op.qubits)
            elif isinstance(op, Reset):
                self._reset_cols(op.qubits)
            elif isinstance(op, LrcFinalize):
                records[op.key] = self._lrc_finalize(op)
            elif isinstance(op, LeakISwap):
                self._leak_iswap_all(op.data_qubits, op.ancillas)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported operation {type(op).__name__}")
        return records

    def leaked_at(self, qubits: Sequence[int]) -> np.ndarray:
        """Ground-truth leakage for the given qubits as bool ``(shots, k)``."""
        idx = np.asarray(qubits, dtype=np.int64)
        if idx.size == 0:
            return np.zeros((self.shots, 0), dtype=bool)
        return unpack_words(self.leaked[:, idx], self.shots)

    def leaked_fraction(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-shot fraction of the given qubits (default: all) currently leaked."""
        if qubits is None:
            qubits = np.arange(self.num_qubits, dtype=np.int64)
        idx = np.asarray(qubits, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(self.shots)
        return self.leaked_at(idx).mean(axis=1)

    def snapshot_leaked(self) -> np.ndarray:
        """Unpacked copy of the current ``(shots, num_qubits)`` leakage flags."""
        return self.leaked_at(np.arange(self.num_qubits, dtype=np.int64))

    # ------------------------------------------------------------------
    # Instance API (one entry per scheduled LRC pair across the batch)
    # ------------------------------------------------------------------
    def _group_pairs(
        self,
        shot_idx: np.ndarray,
        first: np.ndarray,
        second: np.ndarray,
        positions: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, bool, bool, np.ndarray]:
        """Group pair instances by their (first, second) qubit columns.

        Returns ``(first_cols, second_cols, mask_words, first_unique,
        second_unique, pair_of)``: one column pair per distinct qubit pair
        in the instance set, a ``(words, n_pairs)`` activity plane whose
        column ``j`` has the shot bits scheduling pair ``j``, and the local
        pair index of each instance.  This turns a batch of scattered
        per-shot instances into masked word-parallel column kernels — the
        packed analogue of the batched engine's instance execution.  The
        ``*_unique`` flags report whether a qubit appears in more than one
        distinct pair (shots partition between them), which forces
        unbuffered scatter in the column kernels.
        """
        nq = self.num_qubits
        key = first.astype(np.int64) * nq + second
        present = np.zeros(nq * nq, dtype=bool)
        present[key] = True
        uniq = np.nonzero(present)[0]
        lookup = np.empty(nq * nq, dtype=np.int64)
        lookup[uniq] = np.arange(uniq.size)
        pair_of = lookup[key]
        wrows, masks = positions if positions is not None else bit_positions(shot_idx)
        mask_words = np.zeros((self.words, uniq.size), dtype=np.uint64)
        np.bitwise_or.at(mask_words, (wrows, pair_of), masks)
        first_cols = uniq // nq
        second_cols = uniq % nq
        first_unique = np.unique(first_cols).size == first_cols.size
        second_unique = np.unique(second_cols).size == second_cols.size
        return first_cols, second_cols, mask_words, first_unique, second_unique, pair_of

    def _xor_cols(
        self, plane: np.ndarray, cols: np.ndarray, vals: np.ndarray, unique: bool
    ) -> None:
        """XOR word columns into ``plane``, tolerating duplicated columns."""
        if unique:
            plane[:, cols] ^= vals
        else:
            np.bitwise_xor.at(plane, (self._w_index, cols), vals)

    def swap_instances(
        self, shot_idx: np.ndarray, data_qubits: np.ndarray, ancillas: np.ndarray
    ) -> None:
        """Three-CNOT SWAP on per-shot (data, ancilla) pair instances."""
        if shot_idx.size == 0:
            return
        d_cols, a_cols, act, d_u, a_u, _ = self._group_pairs(
            np.asarray(shot_idx, dtype=np.int64), data_qubits, ancillas
        )
        self._cnot_cols(d_cols, a_cols, act=act, c_unique=d_u, t_unique=a_u)
        self._cnot_cols(a_cols, d_cols, act=act, c_unique=a_u, t_unique=d_u)
        self._cnot_cols(d_cols, a_cols, act=act, c_unique=d_u, t_unique=a_u)

    def lrc_finalize_instances(
        self,
        shot_idx: np.ndarray,
        data_qubits: np.ndarray,
        ancillas: np.ndarray,
        adaptive_multilevel: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """SWAP-LRC tail on pair instances; returns 1-D (bits, labels, leaked).

        Same semantics as the batched engine: measure the data-side qubit
        (holding the parity outcome), reset it, swap the parked data state
        back — unless ``adaptive_multilevel`` is set and the measurement
        reported |L>, in which case the swap-back is squashed and the parity
        qubit is reset instead (ERASER+M, Section 4.6.2).
        """
        shot_idx = np.asarray(shot_idx, dtype=np.int64)
        wrows, masks = bit_positions(shot_idx)
        d_cols, a_cols, act, d_u, a_u, pair_of = self._group_pairs(
            shot_idx, data_qubits, ancillas, positions=(wrows, masks)
        )
        bits_m, labels_m, leaked_m = self._measure_pair_cols(d_cols, act, d_u)
        self._reset_pair_cols(d_cols, act, d_u)
        bits = bits_m[shot_idx, pair_of]
        labels = labels_m[shot_idx, pair_of]
        true_leaked = leaked_m[shot_idx, pair_of]
        if adaptive_multilevel:
            leaked_label = labels == LABEL_LEAKED
        else:
            leaked_label = None
        act_back = act
        if leaked_label is not None and leaked_label.any():
            # Squashed instances drop out of the swap-back activity plane.
            act_back = act.copy()
            np.bitwise_and.at(
                act_back,
                (wrows[leaked_label], pair_of[leaked_label]),
                ~masks[leaked_label],
            )
        # Two-CNOT swap-back (valid because the data-side qubit is |0>).
        self._cnot_cols(a_cols, d_cols, act=act_back, c_unique=a_u, t_unique=d_u)
        self._cnot_cols(d_cols, a_cols, act=act_back, c_unique=d_u, t_unique=a_u)
        # The parity qubit physically ends in |0>; clear the unphysical
        # residual phase frame, as the other engines do.
        if a_u:
            self.z[:, a_cols] &= ~act_back
        else:
            np.bitwise_and.at(self.z, (self._w_index, a_cols), ~act_back)
        if leaked_label is not None and leaked_label.any():
            w_q, m_q = wrows[leaked_label], masks[leaked_label]
            d_q, a_q = data_qubits[leaked_label], ancillas[leaked_label]
            self._reset_instances_ix(w_q, m_q, a_q)
            # The parked data state is lost; the freshly reset data qubit is
            # a random Pauli relative to the reference.
            codes = self.rng.integers(0, 4, size=w_q.size)
            xf, zf = _pauli_flips(codes)
            np.bitwise_xor.at(self.x, (w_q, d_q), _flag_masks(m_q, xf))
            np.bitwise_xor.at(self.z, (w_q, d_q), _flag_masks(m_q, zf))
        return bits, labels, true_leaked

    def leak_iswap_instances(
        self, shot_idx: np.ndarray, data_qubits: np.ndarray, ancillas: np.ndarray
    ) -> None:
        """DQLR LeakageISWAP on per-shot (data, ancilla) pair instances."""
        if shot_idx.size == 0:
            return
        wrows, masks = bit_positions(np.asarray(shot_idx, dtype=np.int64))
        self._leak_iswap_instances_ix(wrows, masks, data_qubits, ancillas)

    def reset_instances(self, shot_idx: np.ndarray, qubits: np.ndarray) -> None:
        """Reset per-shot qubit instances to |0>."""
        if shot_idx.size == 0:
            return
        wrows, masks = bit_positions(np.asarray(shot_idx, dtype=np.int64))
        self._reset_instances_ix(wrows, masks, qubits)

    def measure_reset_masked(
        self,
        qubits: np.ndarray,
        meta: tuple,
        active: np.ndarray,
    ) -> BatchedMeasurementRecord:
        """Measure-and-reset the given qubits only where ``active`` is set.

        As in the batched engine, record cells where ``active`` is False
        carry draws but no state was touched there; the harness overwrites
        them with the per-shot LRC measurement results.
        """
        qubits = np.asarray(qubits, dtype=np.int64)
        active_words = pack_bool(np.ascontiguousarray(active, dtype=bool))
        bits, labels, true_leaked = self._measure_cols(
            qubits, collapse=active_words
        )
        self._reset_cols(qubits, active=active_words)
        return BatchedMeasurementRecord(
            qubits=qubits.copy(),
            bits=bits,
            labels=labels,
            true_leaked=true_leaked,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Random draws
    # ------------------------------------------------------------------
    def _pauli1_codes(self, size) -> np.ndarray:
        """Single-qubit error codes 1..3, biased when the profile says so."""
        return draw_pauli_codes(self.rng, self._pauli1_cdf, size, 3)

    def _pauli2_codes(self, size) -> np.ndarray:
        """Two-qubit error codes 1..15, biased when the profile says so."""
        return draw_pauli_codes(self.rng, self._pauli2_cdf, size, 15)

    def _bernoulli_at(self, p, cols: np.ndarray) -> np.ndarray:
        """Per-instance Bernoulli hits at the rate of each instance's qubit."""
        rate = self._rate(p, cols)
        if isinstance(rate, np.ndarray):
            if not rate.any():
                return np.zeros(cols.shape, dtype=bool)
            return self.rng.random(cols.shape) < rate
        if rate <= 0.0:
            return np.zeros(cols.shape, dtype=bool)
        return self.rng.random(cols.shape) < rate

    # ------------------------------------------------------------------
    # Dense (all-shots) kernels over qubit column sets
    # ------------------------------------------------------------------
    def _depolarize1_cols(self, cols: np.ndarray, p) -> None:
        """Sparse single-qubit depolarising noise on unleaked cells."""
        if not channel_active(p):
            return
        rows, col_local = sample_cells(
            self.rng, self.shots, cols.size, self._rate(p, cols)
        )
        if rows.size == 0:
            return
        wrows, masks = bit_positions(rows)
        gcols = cols[col_local]
        unleaked = (self.leaked[wrows, gcols] & masks) == 0
        if not unleaked.any():
            return
        wrows, masks, gcols = wrows[unleaked], masks[unleaked], gcols[unleaked]
        codes = self._pauli1_codes(wrows.size)
        xf, zf = _pauli_flips(codes)
        np.bitwise_xor.at(self.x, (wrows, gcols), _flag_masks(masks, xf))
        np.bitwise_xor.at(self.z, (wrows, gcols), _flag_masks(masks, zf))

    def _inject_leakage_cols(
        self, cols: np.ndarray, p: float, act: Optional[np.ndarray] = None
    ) -> None:
        """Leak currently-unleaked (active) cells with probability ``p``."""
        if p <= 0.0:
            return
        rows, col_local = sample_cells(self.rng, self.shots, cols.size, p)
        if rows.size == 0:
            return
        wrows, masks = bit_positions(rows)
        gcols = cols[col_local]
        unleaked = (self.leaked[wrows, gcols] & masks) == 0
        if act is not None:
            unleaked &= (act[wrows, col_local] & masks) != 0
        np.bitwise_or.at(
            self.leaked, (wrows[unleaked], gcols[unleaked]), masks[unleaked]
        )

    def _round_noise(self, qubits: np.ndarray) -> None:
        cols = qubits
        snapshot = self.leaked[:, cols].copy()
        self._depolarize1_cols(cols, self._p_round)
        self._inject_leakage_cols(cols, self.leakage.p_leak_round)
        # Seepage returns qubits that were leaked at the *start* of the round
        # (a just-injected qubit cannot seep within the same round).
        if self.leakage.p_seepage > 0.0 and snapshot.any():
            rows, col_local = sample_cells(
                self.rng, self.shots, cols.size, self.leakage.p_seepage
            )
            if rows.size:
                wrows, masks = bit_positions(rows)
                seep = (snapshot[wrows, col_local] & masks) != 0
                if seep.any():
                    wrows, masks = wrows[seep], masks[seep]
                    gcols = cols[col_local[seep]]
                    self._return_to_computational_at(wrows, masks, gcols)

    def _return_to_computational_at(
        self, wrows: np.ndarray, masks: np.ndarray, gcols: np.ndarray
    ) -> None:
        """Per-instance: clear leakage, leave a random computational state."""
        np.bitwise_and.at(self.leaked, (wrows, gcols), ~masks)
        rand_x = self.rng.random(wrows.shape) < 0.5
        rand_z = self.rng.random(wrows.shape) < 0.5
        np.bitwise_and.at(self.x, (wrows, gcols), ~masks)
        np.bitwise_or.at(self.x, (wrows, gcols), _flag_masks(masks, rand_x))
        np.bitwise_and.at(self.z, (wrows, gcols), ~masks)
        np.bitwise_or.at(self.z, (wrows, gcols), _flag_masks(masks, rand_z))

    def _hadamard(self, qubits: np.ndarray) -> None:
        cols = qubits
        ok = ~self.leaked[:, cols]  # tail bits irrelevant: ANDed below
        swap = (self.x[:, cols] ^ self.z[:, cols]) & ok
        self.x[:, cols] ^= swap
        self.z[:, cols] ^= swap
        self._depolarize1_cols(cols, self._p_gate1)

    def _pair_rate(self, c_cols: np.ndarray, t_cols: np.ndarray):
        """Two-qubit gate error rate per pair (mean of the operands' rates)."""
        p = self._p_gate2
        if isinstance(p, np.ndarray):
            return 0.5 * (p[c_cols] + p[t_cols])
        return p

    def _depolarize2_cells(
        self,
        c_cols: np.ndarray,
        t_cols: np.ndarray,
        act: Optional[np.ndarray] = None,
    ) -> None:
        """Sparse correlated two-qubit noise on fully-unleaked (active) pairs."""
        if not channel_active(self._p_gate2):
            return
        rows, pair = sample_cells(
            self.rng, self.shots, c_cols.size, self._pair_rate(c_cols, t_cols)
        )
        if rows.size == 0:
            return
        wrows, masks = bit_positions(rows)
        gc, gt = c_cols[pair], t_cols[pair]
        both_ok = (
            (self.leaked[wrows, gc] | self.leaked[wrows, gt]) & masks
        ) == 0
        if act is not None:
            both_ok &= (act[wrows, pair] & masks) != 0
        if not both_ok.any():
            return
        wrows, masks = wrows[both_ok], masks[both_ok]
        gc, gt = gc[both_ok], gt[both_ok]
        codes = self._pauli2_codes(wrows.size)
        cxf, czf = _pauli_flips(codes // 4)
        txf, tzf = _pauli_flips(codes % 4)
        np.bitwise_xor.at(self.x, (wrows, gc), _flag_masks(masks, cxf))
        np.bitwise_xor.at(self.z, (wrows, gc), _flag_masks(masks, czf))
        np.bitwise_xor.at(self.x, (wrows, gt), _flag_masks(masks, txf))
        np.bitwise_xor.at(self.z, (wrows, gt), _flag_masks(masks, tzf))

    def _cnot_cols(
        self,
        controls: np.ndarray,
        targets: np.ndarray,
        act: Optional[np.ndarray] = None,
        c_unique: bool = True,
        t_unique: bool = True,
    ) -> None:
        """CNOT layer over qubit columns, optionally masked per (shot, pair).

        ``act`` is a ``(words, n_pairs)`` activity plane (from
        :meth:`_group_pairs`) restricting the gate to the shots scheduling
        each pair; ``None`` means all shots.  ``c_unique``/``t_unique``
        report column uniqueness — duplicated columns (one qubit in several
        masked pairs) require unbuffered scatter.
        """
        c_cols = controls
        t_cols = targets
        leaked_c = self.leaked[:, c_cols]
        leaked_t = self.leaked[:, t_cols]
        both_ok = ~(leaked_c | leaked_t)
        if act is not None:
            both_ok &= act
        # Frame propagation on fully unleaked pairs (unmasked tail bits of
        # both_ok are set, but the x/z planes are tail-clean, so the AND
        # keeps them so).
        self._xor_cols(self.x, t_cols, self.x[:, c_cols] & both_ok, t_unique)
        self._xor_cols(self.z, c_cols, self.z[:, t_cols] & both_ok, c_unique)
        self._depolarize2_cells(c_cols, t_cols, act=act)

        # Interaction between a leaked and an unleaked operand: the unleaked
        # side suffers a random Pauli and may acquire leakage via transport.
        one_leaked = leaked_c ^ leaked_t
        if act is not None:
            one_leaked &= act
        if one_leaked.any():
            pairs_hit = unpack_words(one_leaked, self.shots)
            shot, pair = np.nonzero(pairs_hit)
            wrows, masks = bit_positions(shot)
            recv_is_target = (self.leaked[wrows, c_cols[pair]] & masks) != 0
            recv = np.where(recv_is_target, t_cols[pair], c_cols[pair])
            codes = self.rng.integers(0, 4, size=shot.size)
            xf, zf = _pauli_flips(codes)
            np.bitwise_xor.at(self.x, (wrows, recv), _flag_masks(masks, xf))
            np.bitwise_xor.at(self.z, (wrows, recv), _flag_masks(masks, zf))
            if self.leakage.p_transport > 0.0:
                transported = self.rng.random(shot.size) < self.leakage.p_transport
                if transported.any():
                    w_t, m_t = wrows[transported], masks[transported]
                    np.bitwise_or.at(self.leaked, (w_t, recv[transported]), m_t)
                    if self.leakage.transport_model is LeakageTransportModel.EXCHANGE:
                        source = np.where(
                            recv_is_target, c_cols[pair], t_cols[pair]
                        )[transported]
                        self._return_to_computational_at(w_t, m_t, source)

        # Operation-induced leakage injection on currently unleaked operands.
        self._inject_leakage_cols(c_cols, self.leakage.p_leak_gate, act=act)
        self._inject_leakage_cols(t_cols, self.leakage.p_leak_gate, act=act)

    def _measure_cols(
        self, cols: np.ndarray, collapse: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Measure the given qubit columns; returns unpacked (bits, labels, leaked).

        Same pinned error-application order as the other engines: classical
        p_measure flip first, then the leaked-qubit bit is *overwritten* by a
        fair random outcome, labels are derived afterwards, and the
        multi-level classification error shifts labels last.  ``collapse``
        (packed words) restricts the phase-frame collapse to active cells.
        """
        true_leaked = self.leaked[:, cols].copy()
        bits = self.x[:, cols].copy()
        rows, col_local = sample_cells(
            self.rng, self.shots, cols.size, self._rate(self._p_measure, cols)
        )
        if rows.size:
            wrows, masks = bit_positions(rows)
            np.bitwise_xor.at(bits, (wrows, col_local), masks)
        if true_leaked.any():
            random_bits = fair_words(self.rng, true_leaked.shape)
            bits = (bits & ~true_leaked) | (random_bits & true_leaked)
        bits_b = unpack_words(bits, self.shots)
        leaked_b = unpack_words(true_leaked, self.shots)
        labels = bits_b.astype(np.int8)
        labels[leaked_b] = LABEL_LEAKED
        if channel_active(self._p_multilevel):
            rows, col_local = sample_cells(
                self.rng, self.shots, cols.size,
                self._rate(self._p_multilevel, cols),
            )
            if rows.size:
                shift = self.rng.integers(1, 3, size=rows.size).astype(np.int8)
                labels[rows, col_local] = (labels[rows, col_local] + shift) % 3
        if collapse is None:
            self.z[:, cols] = _ZERO
        else:
            self.z[:, cols] &= ~collapse
        return bits_b.astype(np.uint8), labels.astype(np.uint8), leaked_b

    def _measure_record(
        self, qubits: np.ndarray, meta: tuple
    ) -> BatchedMeasurementRecord:
        bits, labels, true_leaked = self._measure_cols(qubits)
        return BatchedMeasurementRecord(
            qubits=qubits.copy(),
            bits=bits,
            labels=labels,
            true_leaked=true_leaked,
            meta=meta,
        )

    def _reset_cols(
        self, cols: np.ndarray, active: Optional[np.ndarray] = None
    ) -> None:
        rows, col_local = sample_cells(
            self.rng, self.shots, cols.size, self._rate(self._p_reset, cols)
        )
        wrows, masks = bit_positions(rows)
        if active is None:
            self.x[:, cols] = _ZERO
            self.z[:, cols] = _ZERO
            self.leaked[:, cols] = _ZERO
            if rows.size:
                np.bitwise_or.at(self.x, (wrows, cols[col_local]), masks)
        else:
            self.x[:, cols] &= ~active
            self.z[:, cols] &= ~active
            self.leaked[:, cols] &= ~active
            if rows.size:
                keep = (active[wrows, col_local] & masks) != 0
                np.bitwise_or.at(
                    self.x,
                    (wrows[keep], cols[col_local[keep]]),
                    masks[keep],
                )

    def _measure_pair_cols(
        self, cols: np.ndarray, act: np.ndarray, unique: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Measure grouped pair columns where ``act`` is set; (shots, n) matrices.

        ``cols`` are the data-side qubit columns of :meth:`_group_pairs`
        output — possibly duplicated (one qubit in several pairs), which is
        why results are pair-local matrices rather than state columns.
        Cells outside ``act`` carry draws but no meaning; callers only read
        back active cells, and only those cells' phase frames collapse.
        """
        true_leaked = self.leaked[:, cols] & act
        bits = self.x[:, cols] & act
        rows, col_local = sample_cells(
            self.rng, self.shots, cols.size, self._rate(self._p_measure, cols)
        )
        if rows.size:
            w_f, m_f = bit_positions(rows)
            np.bitwise_xor.at(bits, (w_f, col_local), m_f)
        if true_leaked.any():
            random_bits = fair_words(self.rng, true_leaked.shape)
            bits = (bits & ~true_leaked) | (random_bits & true_leaked)
        bits_b = unpack_words(bits, self.shots)
        leaked_b = unpack_words(true_leaked, self.shots)
        labels = bits_b.astype(np.int8)
        labels[leaked_b] = LABEL_LEAKED
        if channel_active(self._p_multilevel):
            rows, col_local = sample_cells(
                self.rng, self.shots, cols.size,
                self._rate(self._p_multilevel, cols),
            )
            if rows.size:
                shift = self.rng.integers(1, 3, size=rows.size).astype(np.int8)
                labels[rows, col_local] = (labels[rows, col_local] + shift) % 3
        if unique:
            self.z[:, cols] &= ~act
        else:
            np.bitwise_and.at(self.z, (self._w_index, cols), ~act)
        return bits_b.astype(np.uint8), labels.astype(np.uint8), leaked_b

    def _reset_pair_cols(
        self, cols: np.ndarray, act: np.ndarray, unique: bool
    ) -> None:
        """Reset grouped pair columns to |0> where ``act`` is set."""
        rows, col_local = sample_cells(
            self.rng, self.shots, cols.size, self._rate(self._p_reset, cols)
        )
        not_act = ~act
        if unique:
            self.x[:, cols] &= not_act
            self.z[:, cols] &= not_act
            self.leaked[:, cols] &= not_act
        else:
            np.bitwise_and.at(self.x, (self._w_index, cols), not_act)
            np.bitwise_and.at(self.z, (self._w_index, cols), not_act)
            np.bitwise_and.at(self.leaked, (self._w_index, cols), not_act)
        if rows.size:
            w_f, m_f = bit_positions(rows)
            keep = (act[w_f, col_local] & m_f) != 0
            np.bitwise_or.at(
                self.x, (w_f[keep], cols[col_local[keep]]), m_f[keep]
            )

    def _lrc_finalize(self, op: LrcFinalize) -> BatchedMeasurementRecord:
        # Expand the (shots x pairs) block into pair instances so the IR path
        # and the instance path share one implementation.
        n_pairs = op.data_qubits.size
        shot_idx = np.repeat(np.arange(self.shots, dtype=np.int64), n_pairs)
        data_qubits = np.tile(op.data_qubits, self.shots)
        ancillas = np.tile(op.ancillas, self.shots)
        bits, labels, true_leaked = self.lrc_finalize_instances(
            shot_idx, data_qubits, ancillas,
            adaptive_multilevel=op.adaptive_multilevel,
        )
        shape = (self.shots, n_pairs)
        return BatchedMeasurementRecord(
            qubits=op.data_qubits.copy(),
            bits=bits.reshape(shape),
            labels=labels.reshape(shape),
            true_leaked=true_leaked.reshape(shape),
            meta=op.meta,
        )

    def _leak_iswap_all(self, data_qubits: np.ndarray, ancillas: np.ndarray) -> None:
        n_pairs = data_qubits.size
        shot_idx = np.repeat(np.arange(self.shots, dtype=np.int64), n_pairs)
        self.leak_iswap_instances(
            shot_idx, np.tile(data_qubits, self.shots), np.tile(ancillas, self.shots)
        )

    # ------------------------------------------------------------------
    # Instance kernels (per-shot scattered cells; word/bit scatter-gather)
    # ------------------------------------------------------------------
    def _get_bits(
        self, plane: np.ndarray, wrows: np.ndarray, masks: np.ndarray,
        cols: np.ndarray,
    ) -> np.ndarray:
        return (plane[wrows, cols] & masks) != 0

    def _inject_leakage_instances(
        self, wrows: np.ndarray, masks: np.ndarray, cols: np.ndarray
    ) -> None:
        p = self.leakage.p_leak_gate
        if p <= 0.0:
            return
        hit = self.rng.random(wrows.shape) < p
        hit &= (self.leaked[wrows, cols] & masks) == 0
        if hit.any():
            np.bitwise_or.at(
                self.leaked, (wrows[hit], cols[hit]), masks[hit]
            )

    def _reset_instances_ix(
        self, wrows: np.ndarray, masks: np.ndarray, cols: np.ndarray
    ) -> None:
        flips = self._bernoulli_at(self._p_reset, cols)
        np.bitwise_and.at(self.x, (wrows, cols), ~masks)
        np.bitwise_or.at(self.x, (wrows, cols), _flag_masks(masks, flips))
        np.bitwise_and.at(self.z, (wrows, cols), ~masks)
        np.bitwise_and.at(self.leaked, (wrows, cols), ~masks)

    def _leak_iswap_instances_ix(
        self, wrows: np.ndarray, masks: np.ndarray,
        data_qubits: np.ndarray, ancillas: np.ndarray,
    ) -> None:
        """DQLR LeakageISWAP: move data-qubit leakage onto reset parity qubits."""
        leaked_d = self._get_bits(self.leaked, wrows, masks, data_qubits)
        leaked_a = self._get_bits(self.leaked, wrows, masks, ancillas)
        both_ok = ~(leaked_d | leaked_a)
        # Gate infidelity comparable to a CX on computational-basis pairs.
        if channel_active(self._p_gate2):
            p = self._p_gate2
            if isinstance(p, np.ndarray):
                pair_p = 0.5 * (p[data_qubits] + p[ancillas])
                hit = self.rng.random(wrows.shape) < pair_p
            else:
                hit = self.rng.random(wrows.shape) < p
            hit &= both_ok
            if hit.any():
                w_h, m_h = wrows[hit], masks[hit]
                d_h, a_h = data_qubits[hit], ancillas[hit]
                codes = self._pauli2_codes(w_h.size)
                dxf, dzf = _pauli_flips(codes // 4)
                axf, azf = _pauli_flips(codes % 4)
                np.bitwise_xor.at(self.x, (w_h, d_h), _flag_masks(m_h, dxf))
                np.bitwise_xor.at(self.z, (w_h, d_h), _flag_masks(m_h, dzf))
                np.bitwise_xor.at(self.x, (w_h, a_h), _flag_masks(m_h, axf))
                np.bitwise_xor.at(self.z, (w_h, a_h), _flag_masks(m_h, azf))
        # Leakage moves from the data qubit to the parity qubit.
        move = leaked_d & ~leaked_a
        if move.any():
            w_m, m_m = wrows[move], masks[move]
            np.bitwise_or.at(self.leaked, (w_m, ancillas[move]), m_m)
            self._return_to_computational_at(w_m, m_m, data_qubits[move])
        # Failure mode: a failed preceding parity reset (parity in |1>) can
        # excite the data qubit to |L> (|11> <-> |20>).  Read the *current*
        # planes: the gate noise and move above already applied.
        x_a = self._get_bits(self.x, wrows, masks, ancillas)
        leaked_a_now = self._get_bits(self.leaked, wrows, masks, ancillas)
        leaked_d_now = self._get_bits(self.leaked, wrows, masks, data_qubits)
        reset_failed = x_a & ~leaked_a_now & ~leaked_d_now
        if reset_failed.any() and self.leakage.dqlr_reset_excitation > 0.0:
            excite = (
                self.rng.random(wrows.shape) < self.leakage.dqlr_reset_excitation
            )
            excite &= reset_failed
            if excite.any():
                np.bitwise_or.at(
                    self.leaked,
                    (wrows[excite], data_qubits[excite]),
                    masks[excite],
                )
        self._inject_leakage_instances(wrows, masks, data_qubits)
        self._inject_leakage_instances(wrows, masks, ancillas)
