"""DQLR (Data Qubit Leakage Removal) protocol support (Appendix A.2)."""

from repro.dqlr.protocol import DqlrBaselinePolicy, dqlr_policy_names, run_dqlr_comparison

__all__ = ["DqlrBaselinePolicy", "dqlr_policy_names", "run_dqlr_comparison"]
