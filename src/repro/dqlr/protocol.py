"""Google's DQLR protocol and its combination with ERASER (Appendix A.2).

The DQLR protocol removes leakage every round using a LeakageISWAP between
each data qubit and its (freshly reset) parity qubit, followed by another
parity reset.  The gate-level behaviour of the LeakageISWAP — including the
failure mode in which a failed parity reset re-excites the data qubit — is
implemented in the frame simulator (:class:`~repro.sim.circuit.LeakISwap`);
the QEC Schedule Generator inserts it when built with ``protocol="dqlr"``.

This module provides:

* :class:`DqlrBaselinePolicy` — the baseline that applies DQLR to (almost)
  every data qubit every round,
* :func:`run_dqlr_comparison` — the sweep behind Figures 20 and 21, comparing
  baseline DQLR against ERASER, ERASER+M, and Optimal scheduling of the same
  protocol under the alternative (exchange) leakage-transport model.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.dli import SwapLookupTable
from repro.core.policies.base import LrcPolicy, assignment_to_row
from repro.core.qsg import PROTOCOL_DQLR
from repro.experiments.executor import SweepExecutor, warn_unseeded_cache
from repro.experiments.jobs import SweepPlan
from repro.experiments.results import PolicySweepResult
from repro.noise.leakage import LeakageTransportModel
from repro.sim.rng import RngLike


class DqlrBaselinePolicy(LrcPolicy):
    """Apply the DQLR protocol to every data qubit every round.

    There are ``d*d`` data qubits but only ``d*d - 1`` parity partners, so the
    single unmatched data qubit is treated in alternating rounds, exactly as
    the leftover qubit is handled by Always-LRCs scheduling.
    """

    name = "dqlr"
    supports_batch = True

    def __init__(self) -> None:
        super().__init__()
        self._full_assignment: Dict[int, int] = {}
        self._leftover_assignment: Dict[int, int] = {}

    def _on_bind(self) -> None:
        table = SwapLookupTable(self.code, num_backups=None)
        self._full_assignment = table.primary_assignment(exclude_unmatched=True)
        leftover = table.unmatched_data_qubit
        self._leftover_assignment = dict(self._full_assignment)
        if leftover >= 0:
            # Swap the leftover in, dropping the qubit whose partner it borrows.
            partner = table.primary(leftover)
            self._leftover_assignment = {
                q: s for q, s in self._full_assignment.items() if s != partner
            }
            self._leftover_assignment[leftover] = partner

    def _assignment_for_round(self, round_index: int) -> Dict[int, int]:
        if round_index % 2 == 0:
            return dict(self._full_assignment)
        return dict(self._leftover_assignment)

    def initial_assignment(self) -> Dict[int, int]:
        return self._assignment_for_round(0)

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        return self._assignment_for_round(round_index + 1)

    def decide_batch(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> np.ndarray:
        # The static schedule is identical across shots: broadcast one row.
        row = assignment_to_row(
            self._assignment_for_round(round_index + 1), self.code.num_data_qubits
        )
        return np.tile(row, (detection_events.shape[0], 1))


#: The four policies compared in Figures 20 and 21.
DQLR_POLICIES = ("dqlr", "eraser", "eraser+m", "optimal")


def dqlr_policy_names() -> Sequence[str]:
    """The four policies compared in Figures 20 and 21."""
    return DQLR_POLICIES


def dqlr_comparison_plan(
    distances: Sequence[int],
    policies: Sequence[str] = DQLR_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: int = None,
    chunk_shots: int = None,
    decoder_dp_threshold: int = None,
    decoder_cache_size: int = None,
    decoder_artifact_dir: str = None,
    code_family: str = None,
    noise_profile=None,
) -> SweepPlan:
    """The Appendix A.2 sweep (Figures 20/21) as an executable plan."""
    configs = [
        dict(
            distance=distance,
            policy=policy_name,
            p=p,
            shots=shots,
            cycles=cycles,
            transport_model=LeakageTransportModel.EXCHANGE,
            protocol=PROTOCOL_DQLR,
            decode=decode,
            decoder_method=decoder_method,
            engine=engine,
            batch_size=batch_size,
            decoder_dp_threshold=decoder_dp_threshold,
            decoder_cache_size=decoder_cache_size,
            decoder_artifact_dir=decoder_artifact_dir,
            code_family=code_family,
            noise_profile=noise_profile,
        )
        for distance in distances
        for policy_name in policies
    ]
    return SweepPlan.build(configs, seed=seed, chunk_shots=chunk_shots)


def run_dqlr_comparison(
    distances: Sequence[int],
    policies: Sequence[str] = DQLR_POLICIES,
    p: float = 1e-3,
    cycles: int = 10,
    shots: int = 100,
    decode: bool = True,
    decoder_method: str = "auto",
    seed: RngLike = None,
    engine: str = "auto",
    batch_size: int = None,
    jobs: int = 1,
    cache_dir: str = None,
    resume: bool = False,
    chunk_shots: int = None,
    executor: SweepExecutor = None,
    decoder_dp_threshold: int = None,
    decoder_cache_size: int = None,
    decoder_artifact_dir: str = None,
    code_family: str = None,
    noise_profile=None,
) -> PolicySweepResult:
    """Sweep DQLR-based leakage removal across distances and policies.

    Matches the evaluation setup of Appendix A.2: the LeakageISWAP has CX-like
    fidelity and the alternative (exchange) leakage-transport model is used so
    the results reflect Sycamore-like transport behaviour.  ``jobs``,
    ``cache_dir`` and ``resume`` behave as in
    :mod:`repro.experiments.sweep`: the plan runs through a
    :class:`~repro.experiments.executor.SweepExecutor`, optionally in
    parallel and backed by the content-addressed result cache.
    """
    plan = dqlr_comparison_plan(
        distances=distances,
        policies=policies,
        p=p,
        cycles=cycles,
        shots=shots,
        decode=decode,
        decoder_method=decoder_method,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
        chunk_shots=chunk_shots,
        decoder_dp_threshold=decoder_dp_threshold,
        decoder_cache_size=decoder_cache_size,
        decoder_artifact_dir=decoder_artifact_dir,
        code_family=code_family,
        noise_profile=noise_profile,
    )
    if executor is None:
        warn_unseeded_cache(seed, cache_dir, resume)
        executor = SweepExecutor(
            jobs=jobs,
            cache_dir=cache_dir,
            resume=resume,
            decoder_artifact_dir=decoder_artifact_dir,
        )
    return PolicySweepResult(list(executor.run(plan)))
