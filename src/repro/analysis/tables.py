"""Plain-text tabulation helpers used by the benchmark harness and CLI.

The offline environment has no plotting library, so every figure of the paper
is regenerated as the table of numbers behind it (the series that would be
plotted).  :func:`format_table` renders those series in aligned columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows of mixed values as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_table(series: Mapping[str, Mapping[int, float]], x_label: str = "x") -> str:
    """Render a ``{series -> {x -> y}}`` mapping as a wide table."""
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            row.append(series[name].get(x, float("nan")))
        rows.append(row)
    return format_table(headers, rows)
