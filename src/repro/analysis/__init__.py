"""Analytic models and tabulation helpers."""

from repro.analysis.analytic import (
    expected_lrcs_per_round_always,
    invisible_leakage_probability,
    invisible_leakage_table,
    leakage_onto_data_without_lrc,
    leakage_onto_parity_with_lrc,
)
from repro.analysis.tables import format_table

__all__ = [
    "leakage_onto_data_without_lrc",
    "leakage_onto_parity_with_lrc",
    "invisible_leakage_probability",
    "invisible_leakage_table",
    "expected_lrcs_per_round_always",
    "format_table",
]
