"""Analytic models (Sections 3.1 and 4.1) and tabulation helpers.

The closed forms behind Equations (1)-(3) and Table 2 live in
:mod:`repro.analysis.analytic`; :mod:`repro.analysis.tables` renders the
number series behind every figure as aligned plain-text tables.
"""

from repro.analysis.analytic import (
    expected_lrcs_per_round_always,
    invisible_leakage_probability,
    invisible_leakage_table,
    leakage_onto_data_without_lrc,
    leakage_onto_parity_with_lrc,
)
from repro.analysis.tables import format_table

__all__ = [
    "leakage_onto_data_without_lrc",
    "leakage_onto_parity_with_lrc",
    "invisible_leakage_probability",
    "invisible_leakage_table",
    "expected_lrcs_per_round_always",
    "format_table",
]
