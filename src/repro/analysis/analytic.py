"""Closed-form models from Sections 3.1 and 4.1 of the paper.

Three analytic results motivate the ERASER design:

* Equation (1): the probability that a data qubit leaks during a round
  *without* an LRC, given its parity qubit is already leaked (~10%).
* Equation (2): the probability that a parity qubit leaks during a round
  *with* an LRC, given the data qubit is already leaked (~34%).  The fact that
  Equation (2) is roughly three times Equation (1) is the evidence that LRCs
  facilitate leakage transport.
* Equation (3) / Table 2: the probability that a leaked data qubit remains
  *invisible* to syndrome extraction for ``r`` rounds; more than 99% of
  leakage events become visible within two rounds, which justifies optimising
  the Leakage Speculation Block for visible leakage only.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Default CNOT leakage probability, 0.1 * p with p = 1e-3 (Table 1).
DEFAULT_P_LEAK = 1e-4

#: Default CNOT leakage transport probability (Table 1).
DEFAULT_P_TRANSPORT = 0.1


def leakage_onto_data_without_lrc(
    p_leak: float = DEFAULT_P_LEAK,
    p_transport: float = DEFAULT_P_TRANSPORT,
    num_cnots: int = 4,
) -> float:
    """Equation (1): P(L_data | L_parity) for a round without an LRC.

    The data qubit can leak either through operation-induced leakage in any of
    its ``num_cnots`` CNOTs, or through a transport error in the single CNOT it
    shares with the leaked parity qubit.
    """
    operation_term = sum(
        (1.0 - p_leak) ** (k - 1) * p_leak for k in range(1, num_cnots + 1)
    )
    return p_transport + operation_term


def leakage_onto_parity_with_lrc(
    p_leak: float = DEFAULT_P_LEAK,
    p_transport: float = DEFAULT_P_TRANSPORT,
    num_cnots: int = 9,
    num_transport_cnots: int = 4,
) -> float:
    """Equation (2): P(L_parity | L_data) for a round with a SWAP LRC.

    The parity qubit participates in nine CNOTs during an LRC round and
    interacts with the (leaked) data qubit four times before the data qubit is
    reset, each interaction being a transport opportunity.
    """
    operation_term = sum(
        (1.0 - p_leak) ** (k - 1) * p_leak for k in range(1, num_cnots + 1)
    )
    transport_term = sum(
        (1.0 - p_transport) ** (k - 1) * p_transport
        for k in range(1, num_transport_cnots + 1)
    )
    return operation_term + transport_term


def transport_amplification_factor(
    p_leak: float = DEFAULT_P_LEAK, p_transport: float = DEFAULT_P_TRANSPORT
) -> float:
    """Ratio Equation (2) / Equation (1); about 3x in the paper."""
    return leakage_onto_parity_with_lrc(p_leak, p_transport) / leakage_onto_data_without_lrc(
        p_leak, p_transport
    )


def invisible_leakage_probability(rounds_invisible: int, num_neighbors: int = 4) -> float:
    """Equation (3): probability a leaked data qubit stays invisible ``r`` rounds.

    A leaked data qubit affects each of its ``num_neighbors`` adjacent parity
    checks with probability one half per round, so it escapes notice in one
    round with probability ``(1/2) ** num_neighbors``.
    """
    if rounds_invisible < 0:
        raise ValueError("rounds_invisible must be non-negative")
    p_invisible_one_round = 0.5 ** num_neighbors
    p_visible = 1.0 - p_invisible_one_round
    return p_visible * p_invisible_one_round ** rounds_invisible


def invisible_leakage_table(max_rounds: int = 3, num_neighbors: int = 4) -> List[Tuple[int, float]]:
    """Table 2: (rounds spent invisible, probability in percent)."""
    return [
        (r, 100.0 * invisible_leakage_probability(r, num_neighbors))
        for r in range(max_rounds + 1)
    ]


def expected_lrcs_per_round_always(distance: int) -> float:
    """Average LRCs per round under Always-LRCs scheduling (Table 4 baseline).

    ``d*d - 1`` data qubits are swapped every other round and the single
    leftover data qubit is swapped in the intervening rounds.
    """
    if distance < 3 or distance % 2 == 0:
        raise ValueError("distance must be an odd integer >= 3")
    return (distance * distance) / 2.0


def paper_table2() -> Dict[int, float]:
    """The exact percentages printed in Table 2 of the paper."""
    return {0: 93.8, 1: 5.90, 2: 0.36, 3: 0.02}
