"""Idealized (oracle) LRC scheduling.

The "Optimal" policy of the paper schedules an LRC for a data qubit as soon as
that qubit is actually leaked.  It is physically unrealisable — leakage cannot
be observed directly — but bounds how much of the Always-LRCs gap an adaptive
policy could ever close (Section 3.2 and Figures 6, 14–16).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dli import DynamicLrcInsertion, SwapLookupTable
from repro.core.lsb import ParityUsageTrackingTable
from repro.core.policies.base import NO_LRC, LrcPolicy


class OptimalLrcPolicy(LrcPolicy):
    """Schedule an LRC for every data qubit that is currently leaked (oracle)."""

    name = "optimal"
    uses_ground_truth = True
    supports_batch = True

    def __init__(self, num_backups: int = None):
        super().__init__()
        self._num_backups = num_backups
        self._dli: DynamicLrcInsertion = None
        self._putt: ParityUsageTrackingTable = None
        self._putt_batch: np.ndarray = None

    def _on_bind(self) -> None:
        table = SwapLookupTable(self.code, num_backups=self._num_backups)
        self._dli = DynamicLrcInsertion(table)
        self._putt = ParityUsageTrackingTable(self.code.num_stabilizers)
        self._putt_batch = None

    def start_shot(self) -> None:
        if self._putt is not None:
            self._putt.clear()

    def start_batch(self, shots: int) -> None:
        self._putt_batch = np.zeros((shots, self.code.num_stabilizers), dtype=bool)

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        leaked = np.flatnonzero(np.asarray(true_leaked_data, dtype=bool))
        assignment = self._dli.assign(
            (int(q) for q in leaked),
            blocked_stabilizers=self._putt.used_stabilizers(),
        )
        self._putt.record_round(assignment.values())
        return assignment

    def decide_batch(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> np.ndarray:
        shots = detection_events.shape[0]
        assign = np.full((shots, self.code.num_data_qubits), NO_LRC, dtype=np.int16)
        leaked = np.asarray(true_leaked_data, dtype=bool)
        # Leakage is rare at realistic rates; only shots with at least one
        # leaked data qubit need the greedy lookup-table pairing.
        for shot in np.flatnonzero(leaked.any(axis=1)):
            assignment = self._dli.assign(
                (int(q) for q in np.flatnonzero(leaked[shot])),
                blocked_stabilizers=np.flatnonzero(self._putt_batch[shot]),
            )
            for data_qubit, stab in assignment.items():
                assign[shot, data_qubit] = stab
        self._putt_batch[:] = False
        rows, qubits = np.nonzero(assign >= 0)
        self._putt_batch[rows, assign[rows, qubits]] = True
        return assign
