"""Abstract interface shared by all LRC scheduling policies (Section 4).

Every policy the paper evaluates — Always-LRCs, ERASER, ERASER+M, Optimal,
and the no-LRC baseline — implements this per-round decision interface.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.codes.base import StabilizerCode
from repro.sim.rng import RngLike, make_rng

#: Sentinel stabilizer index meaning "no LRC" in batched assignment arrays.
NO_LRC = -1


def assignment_to_row(assignment: Dict[int, int], num_data_qubits: int) -> np.ndarray:
    """Encode a ``{data qubit: stabilizer}`` assignment as a dense int row.

    Entry ``row[q]`` holds the stabilizer index data qubit ``q`` swaps with,
    or :data:`NO_LRC` when no LRC is scheduled for it.
    """
    row = np.full(num_data_qubits, NO_LRC, dtype=np.int16)
    for data_qubit, stab in assignment.items():
        row[data_qubit] = stab
    return row


def row_to_assignment(row: np.ndarray) -> Dict[int, int]:
    """Decode a dense assignment row back into a ``{data qubit: stabilizer}`` dict."""
    return {int(q): int(row[q]) for q in np.flatnonzero(row >= 0)}


class LrcPolicy(abc.ABC):
    """Decides which data qubits receive leakage-removal operations each round.

    The experiment runner drives a policy through the following protocol:

    1. :meth:`bind` is called once per Monte-Carlo shot with the code instance.
    2. :meth:`initial_assignment` provides the LRC assignment for round 0.
    3. After every syndrome-extraction round, :meth:`decide` is called with the
       round's detection events (parity-check flips), the raw syndrome bits,
       the multi-level readout labels, and — for the oracle policy only — the
       ground-truth data-qubit leakage.  It returns the assignment for the
       *next* round as a mapping from data qubit to stabilizer index.

    Policies that set :attr:`supports_batch` additionally implement the batched
    protocol used by the vectorised Monte-Carlo engine: :meth:`start_batch`
    replaces :meth:`start_shot`, and :meth:`decide_batch` consumes
    ``(shots, num_stabilizers)`` syndrome/label arrays and returns a
    ``(shots, num_data_qubits)`` int array of per-shot assignments
    (:data:`NO_LRC` where no LRC is scheduled).
    """

    #: Human-readable policy name used in result tables.
    name: str = "abstract"

    #: Whether this policy consumes ground-truth leakage (oracle policies).
    uses_ground_truth: bool = False

    #: Whether this policy consumes multi-level readout labels.
    uses_multilevel_readout: bool = False

    #: Whether this policy implements the batched decision protocol.
    supports_batch: bool = False

    def __init__(self) -> None:
        self.code: Optional[StabilizerCode] = None
        self.rng = make_rng(None)

    def bind(self, code: StabilizerCode, rng: RngLike = None) -> None:
        """Attach the policy to a code instance (called once per experiment)."""
        self.code = code
        self.rng = make_rng(rng)
        self._on_bind()
        self.start_shot()

    def _on_bind(self) -> None:
        """Hook for subclasses to build per-code state."""

    def start_shot(self) -> None:
        """Reset per-shot state (called before every Monte-Carlo shot)."""

    def initial_assignment(self) -> Dict[int, int]:
        """LRC assignment for the very first round (default: none)."""
        return {}

    # ------------------------------------------------------------------
    # Batched protocol (policies with ``supports_batch = True``)
    # ------------------------------------------------------------------
    def start_batch(self, shots: int) -> None:
        """Reset per-shot state for a batch of ``shots`` Monte-Carlo shots."""
        if not self.supports_batch:
            raise NotImplementedError(
                f"policy {self.name!r} does not support batched execution"
            )

    def initial_assignment_batch(self, shots: int) -> np.ndarray:
        """Per-shot assignment rows for round 0 (default: broadcast scalar)."""
        row = assignment_to_row(self.initial_assignment(), self.code.num_data_qubits)
        return np.tile(row, (shots, 1))

    def decide_batch(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: Optional[np.ndarray],
    ) -> np.ndarray:
        """Return per-shot assignment rows for the next round.

        Args:
            round_index: Index of the round that just completed (0-based).
            detection_events: ``(shots, num_stabilizers)`` boolean array; True
                where the parity check flipped relative to the previous round.
            syndrome: ``(shots, num_stabilizers)`` raw measured parity bits.
            readout_labels: ``(shots, num_stabilizers)`` multi-level labels.
            true_leaked_data: ``(shots, num_data_qubits)`` ground-truth leakage
                flags, or ``None`` unless :attr:`uses_ground_truth` is set.

        Returns:
            ``(shots, num_data_qubits)`` int16 array; entry ``[s, q]`` is the
            stabilizer index whose parity qubit data qubit ``q`` swaps with in
            shot ``s``, or :data:`NO_LRC`.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not support batched execution"
        )

    @abc.abstractmethod
    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        """Return the LRC assignment for the next round.

        Args:
            round_index: Index of the round that just completed (0-based).
            detection_events: Boolean array over stabilizers; True where the
                parity check flipped relative to the previous round.
            syndrome: Raw measured parity-check bits for this round.
            readout_labels: Multi-level discriminator labels per stabilizer
                measurement (0, 1, or 2 = |L>).
            true_leaked_data: Ground-truth leakage flags over data qubits; only
                oracle policies may consult this.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
