"""Abstract interface shared by all LRC scheduling policies."""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.codes.rotated_surface import RotatedSurfaceCode
from repro.sim.rng import RngLike, make_rng


class LrcPolicy(abc.ABC):
    """Decides which data qubits receive leakage-removal operations each round.

    The experiment runner drives a policy through the following protocol:

    1. :meth:`bind` is called once per Monte-Carlo shot with the code instance.
    2. :meth:`initial_assignment` provides the LRC assignment for round 0.
    3. After every syndrome-extraction round, :meth:`decide` is called with the
       round's detection events (parity-check flips), the raw syndrome bits,
       the multi-level readout labels, and — for the oracle policy only — the
       ground-truth data-qubit leakage.  It returns the assignment for the
       *next* round as a mapping from data qubit to stabilizer index.
    """

    #: Human-readable policy name used in result tables.
    name: str = "abstract"

    #: Whether this policy consumes ground-truth leakage (oracle policies).
    uses_ground_truth: bool = False

    #: Whether this policy consumes multi-level readout labels.
    uses_multilevel_readout: bool = False

    def __init__(self) -> None:
        self.code: Optional[RotatedSurfaceCode] = None
        self.rng = make_rng(None)

    def bind(self, code: RotatedSurfaceCode, rng: RngLike = None) -> None:
        """Attach the policy to a code instance (called once per experiment)."""
        self.code = code
        self.rng = make_rng(rng)
        self._on_bind()
        self.start_shot()

    def _on_bind(self) -> None:
        """Hook for subclasses to build per-code state."""

    def start_shot(self) -> None:
        """Reset per-shot state (called before every Monte-Carlo shot)."""

    def initial_assignment(self) -> Dict[int, int]:
        """LRC assignment for the very first round (default: none)."""
        return {}

    @abc.abstractmethod
    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        """Return the LRC assignment for the next round.

        Args:
            round_index: Index of the round that just completed (0-based).
            detection_events: Boolean array over stabilizers; True where the
                parity check flipped relative to the previous round.
            syndrome: Raw measured parity-check bits for this round.
            readout_labels: Multi-level discriminator labels per stabilizer
                measurement (0, 1, or 2 = |L>).
            true_leaked_data: Ground-truth leakage flags over data qubits; only
                oracle policies may consult this.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
