"""The state-of-the-art static Always-LRCs scheduling policy.

Section 2.4 / Figure 3 of the paper: LRCs are compiled offline and executed
every other round.  In the "on" rounds every data qubit that has a unique
primary parity-qubit partner (there are ``d*d - 1`` of them) is swapped; the
single leftover data qubit is swapped in the following round, which is
otherwise a plain syndrome-extraction round.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dli import SwapLookupTable
from repro.core.policies.base import LrcPolicy, assignment_to_row


class AlwaysLrcPolicy(LrcPolicy):
    """Schedule LRCs for (almost) all data qubits every alternate round."""

    name = "always-lrc"
    supports_batch = True

    def __init__(self, start_with_lrc_round: bool = False):
        super().__init__()
        self._start_with_lrc_round = start_with_lrc_round
        self._full_assignment: Dict[int, int] = {}
        self._leftover_assignment: Dict[int, int] = {}

    def _on_bind(self) -> None:
        table = SwapLookupTable(self.code, num_backups=None)
        self._full_assignment = table.primary_assignment(exclude_unmatched=True)
        leftover = table.unmatched_data_qubit
        self._leftover_assignment = {}
        if leftover >= 0:
            self._leftover_assignment = {leftover: table.primary(leftover)}

    def _assignment_for_round(self, round_index: int) -> Dict[int, int]:
        """Assignment used during round ``round_index`` (0-based)."""
        phase = round_index % 2
        lrc_phase = 0 if self._start_with_lrc_round else 1
        if phase == lrc_phase:
            return dict(self._full_assignment)
        if round_index == 0 and not self._start_with_lrc_round:
            # Round R1 in Figure 3: no LRCs at all.
            return {}
        return dict(self._leftover_assignment)

    def initial_assignment(self) -> Dict[int, int]:
        return self._assignment_for_round(0)

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        return self._assignment_for_round(round_index + 1)

    def decide_batch(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> np.ndarray:
        # The static schedule is identical across shots: broadcast one row.
        row = assignment_to_row(
            self._assignment_for_round(round_index + 1), self.code.num_data_qubits
        )
        return np.tile(row, (detection_events.shape[0], 1))
