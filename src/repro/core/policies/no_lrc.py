"""Baseline policy that never schedules leakage removal."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.policies.base import LrcPolicy


class NoLrcPolicy(LrcPolicy):
    """Never insert LRCs; parity qubits are still reset by normal readout."""

    name = "no-lrc"

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        return {}
