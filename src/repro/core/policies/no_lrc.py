"""Baseline policy that never schedules leakage removal (Figure 2 baseline).

The paper's motivation data (Section 2.3) measures how leakage accumulates
when no LRCs are inserted; this policy reproduces that configuration.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.policies.base import NO_LRC, LrcPolicy


class NoLrcPolicy(LrcPolicy):
    """Never insert LRCs; parity qubits are still reset by normal readout."""

    name = "no-lrc"
    supports_batch = True

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        return {}

    def decide_batch(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> np.ndarray:
        shots = detection_events.shape[0]
        return np.full((shots, self.code.num_data_qubits), NO_LRC, dtype=np.int16)
