"""LRC scheduling policies evaluated in the paper.

* :class:`NoLrcPolicy` — never schedule leakage removal (the "No-LRC" baseline
  of Figures 1(c) and 2(c)).
* :class:`AlwaysLrcPolicy` — the state-of-the-art static policy that schedules
  LRCs for (almost) every data qubit every other round.
* :class:`OptimalLrcPolicy` — the idealized oracle that schedules an LRC for a
  data qubit as soon as it actually leaks (upper bound).
* :class:`EraserPolicy` — the paper's contribution: syndrome-driven
  speculation (LSB) plus dynamic insertion (DLI).
* :class:`EraserMPolicy` — ERASER enhanced with multi-level readout.
"""

from repro.core.policies.base import LrcPolicy
from repro.core.policies.no_lrc import NoLrcPolicy
from repro.core.policies.always_lrc import AlwaysLrcPolicy
from repro.core.policies.optimal import OptimalLrcPolicy
from repro.core.policies.eraser import EraserMPolicy, EraserPolicy

_POLICY_REGISTRY = {
    "no-lrc": NoLrcPolicy,
    "always-lrc": AlwaysLrcPolicy,
    "optimal": OptimalLrcPolicy,
    "eraser": EraserPolicy,
    "eraser+m": EraserMPolicy,
}


def make_policy(name: str, **kwargs) -> LrcPolicy:
    """Instantiate a policy by its canonical name.

    Accepted names: ``no-lrc``, ``always-lrc``, ``optimal``, ``eraser``,
    ``eraser+m`` (case-insensitive; underscores and spaces are tolerated).
    """
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    aliases = {
        "none": "no-lrc",
        "nolrc": "no-lrc",
        "always": "always-lrc",
        "alwayslrc": "always-lrc",
        "always-lrcs": "always-lrc",
        "ideal": "optimal",
        "idealized": "optimal",
        "eraserm": "eraser+m",
        "eraser-m": "eraser+m",
    }
    key = aliases.get(key, key)
    if key not in _POLICY_REGISTRY:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_POLICY_REGISTRY)}"
        )
    return _POLICY_REGISTRY[key](**kwargs)


__all__ = [
    "LrcPolicy",
    "NoLrcPolicy",
    "AlwaysLrcPolicy",
    "OptimalLrcPolicy",
    "EraserPolicy",
    "EraserMPolicy",
    "make_policy",
]
