"""ERASER and ERASER+M: adaptive, speculation-driven LRC scheduling.

This is the paper's main contribution (Section 4).  The policy wraps the
Leakage Speculation Block (LSB) and Dynamic LRC Insertion (DLI) blocks:

1. After each round, the LSB inspects the parity-check flips (and, for
   ERASER+M, the multi-level readout labels) and updates the Leakage Tracking
   Table.
2. The DLI pairs every marked data qubit with an available parity qubit using
   the SWAP Lookup Table, skipping parity qubits the PUTT marks as used.
3. The resulting assignment is handed to the QEC Schedule Generator for the
   next round; marked qubits that could not be paired stay in the LTT and are
   retried.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dli import DynamicLrcInsertion, SwapLookupTable
from repro.core.lsb import LeakageSpeculationBlock
from repro.core.policies.base import NO_LRC, LrcPolicy


class EraserPolicy(LrcPolicy):
    """ERASER: speculate leakage from parity-check flips, insert LRCs on demand.

    Args:
        num_backups: Number of backup parity-qubit candidates per data qubit in
            the SWAP Lookup Table (the paper's hardware keeps one).
        use_multilevel_readout: Enable the ERASER+M LSB enhancement.  Prefer
            the :class:`EraserMPolicy` subclass, which also enables the QSG
            modification, over setting this flag directly.
        speculation_threshold_override: Fixed flip-count trigger for the LSB
            instead of the default majority rule (ablation knob; Insight #2 of
            the paper discusses this conservative/aggressive trade-off).
    """

    name = "eraser"
    uses_multilevel_readout = False
    supports_batch = True

    def __init__(
        self,
        num_backups: int = 1,
        use_multilevel_readout: bool = False,
        speculation_threshold_override: int = None,
    ):
        super().__init__()
        self._num_backups = num_backups
        self._use_multilevel = use_multilevel_readout or self.uses_multilevel_readout
        self._threshold_override = speculation_threshold_override
        self._lsb: LeakageSpeculationBlock = None
        self._dli: DynamicLrcInsertion = None
        self._last_assignment: Dict[int, int] = {}
        # Batched LSB state: one LTT / PUTT / had-an-LRC row per shot.
        self._batch_ltt: np.ndarray = None
        self._batch_putt: np.ndarray = None
        self._batch_had_lrc: np.ndarray = None

    def _on_bind(self) -> None:
        self._lsb = LeakageSpeculationBlock(
            self.code,
            use_multilevel_readout=self._use_multilevel,
            threshold_override=self._threshold_override,
        )
        table = SwapLookupTable(self.code, num_backups=self._num_backups)
        self._dli = DynamicLrcInsertion(table)
        self._last_assignment = {}
        # Data-qubit x stabilizer adjacency, used to evaluate the LSB rule for
        # a whole batch with one matmul; the neighbour lists and per-qubit
        # flip thresholds are the LSB's own (it is the canonical definition of
        # the speculation rule), so both engines share one source of truth.
        n_data = self.code.num_data_qubits
        n_stabs = self.code.num_stabilizers
        adjacency = np.zeros((n_data, n_stabs), dtype=np.uint8)
        for data_qubit in self.code.data_indices:
            adjacency[data_qubit, self._lsb._neighbors[data_qubit]] = 1
        self._adjacency_t = adjacency.T.copy()
        self._thresholds = self._lsb._thresholds
        # Candidate lists in the DLI's visitation order (ascending data qubit,
        # primary before backups) so the batched path can replay the greedy
        # pairing for all shots at once.
        self._dli_candidates = sorted(self._dli.lookup_table.candidates.items())
        self._batch_ltt = None
        self._batch_putt = None
        self._batch_had_lrc = None

    def start_shot(self) -> None:
        if self._lsb is not None:
            self._lsb.reset()
        self._last_assignment = {}

    def start_batch(self, shots: int) -> None:
        self._batch_ltt = np.zeros((shots, self.code.num_data_qubits), dtype=bool)
        self._batch_putt = np.zeros((shots, self.code.num_stabilizers), dtype=bool)
        self._batch_had_lrc = np.zeros((shots, self.code.num_data_qubits), dtype=bool)

    @property
    def speculation_block(self) -> LeakageSpeculationBlock:
        """The LSB instance (exposed for microarchitecture-level tests)."""
        return self._lsb

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        labels = readout_labels if self._use_multilevel else None
        candidates = self._lsb.observe_round(
            detection_events,
            previous_lrc_data_qubits=self._last_assignment.keys(),
            readout_labels=labels,
        )
        assignment = self._dli.assign(
            candidates, blocked_stabilizers=self._lsb.blocked_stabilizers()
        )
        self._lsb.commit_assignment(assignment)
        self._last_assignment = assignment
        return assignment

    def decide_batch(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> np.ndarray:
        events = np.asarray(detection_events, dtype=bool)
        shots = events.shape[0]
        had_lrc = self._batch_had_lrc
        # LSB observe step, all shots at once: qubits whose LRC just executed
        # are cleared from the LTT and excluded from this round's speculation;
        # everything else is marked when enough neighbouring checks flipped.
        self._batch_ltt &= ~had_lrc
        flip_counts = events.astype(np.uint8) @ self._adjacency_t
        mark = flip_counts >= self._thresholds[np.newaxis, :]
        if self._use_multilevel and readout_labels is not None:
            leaked_checks = np.asarray(readout_labels) == self._lsb.leaked_label
            mark |= (leaked_checks.astype(np.uint8) @ self._adjacency_t) > 0
        self._batch_ltt |= mark & ~had_lrc

        # DLI step: the greedy lookup-table pairing is sequential over data
        # qubits, but every shot walks the same ascending-qubit, primary-first
        # candidate order, so the whole batch replays it in lockstep — one
        # boolean column op per (data qubit, candidate) instead of a Python
        # loop per shot.  Decisions are identical to DynamicLrcInsertion.assign
        # run shot by shot.
        assign = np.full((shots, self.code.num_data_qubits), NO_LRC, dtype=np.int16)
        if self._batch_ltt.any():
            taken = self._batch_putt.copy()
            for data_qubit, candidates in self._dli_candidates:
                pending = self._batch_ltt[:, data_qubit].copy()
                if not pending.any():
                    continue
                for stab in candidates:
                    take = pending & ~taken[:, stab]
                    if take.any():
                        assign[take, data_qubit] = stab
                        taken[take, stab] = True
                        pending &= ~take
                        if not pending.any():
                            break

        # Commit step: assigned qubits leave the LTT, their parity qubits are
        # blocked for one round, and they count as "had an LRC" next round.
        assigned = assign >= 0
        self._batch_ltt &= ~assigned
        self._batch_putt[:] = False
        rows, qubits = np.nonzero(assigned)
        self._batch_putt[rows, assign[rows, qubits]] = True
        self._batch_had_lrc = assigned
        return assign


class EraserMPolicy(EraserPolicy):
    """ERASER+M: ERASER augmented with multi-level (|0>/|1>/|L>) readout."""

    name = "eraser+m"
    uses_multilevel_readout = True

    def __init__(self, num_backups: int = 1):
        super().__init__(num_backups=num_backups, use_multilevel_readout=True)
