"""ERASER and ERASER+M: adaptive, speculation-driven LRC scheduling.

This is the paper's main contribution (Section 4).  The policy wraps the
Leakage Speculation Block (LSB) and Dynamic LRC Insertion (DLI) blocks:

1. After each round, the LSB inspects the parity-check flips (and, for
   ERASER+M, the multi-level readout labels) and updates the Leakage Tracking
   Table.
2. The DLI pairs every marked data qubit with an available parity qubit using
   the SWAP Lookup Table, skipping parity qubits the PUTT marks as used.
3. The resulting assignment is handed to the QEC Schedule Generator for the
   next round; marked qubits that could not be paired stay in the LTT and are
   retried.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dli import DynamicLrcInsertion, SwapLookupTable
from repro.core.lsb import LeakageSpeculationBlock
from repro.core.policies.base import LrcPolicy


class EraserPolicy(LrcPolicy):
    """ERASER: speculate leakage from parity-check flips, insert LRCs on demand.

    Args:
        num_backups: Number of backup parity-qubit candidates per data qubit in
            the SWAP Lookup Table (the paper's hardware keeps one).
        use_multilevel_readout: Enable the ERASER+M LSB enhancement.  Prefer
            the :class:`EraserMPolicy` subclass, which also enables the QSG
            modification, over setting this flag directly.
        speculation_threshold_override: Fixed flip-count trigger for the LSB
            instead of the default majority rule (ablation knob; Insight #2 of
            the paper discusses this conservative/aggressive trade-off).
    """

    name = "eraser"
    uses_multilevel_readout = False

    def __init__(
        self,
        num_backups: int = 1,
        use_multilevel_readout: bool = False,
        speculation_threshold_override: int = None,
    ):
        super().__init__()
        self._num_backups = num_backups
        self._use_multilevel = use_multilevel_readout or self.uses_multilevel_readout
        self._threshold_override = speculation_threshold_override
        self._lsb: LeakageSpeculationBlock = None
        self._dli: DynamicLrcInsertion = None
        self._last_assignment: Dict[int, int] = {}

    def _on_bind(self) -> None:
        self._lsb = LeakageSpeculationBlock(
            self.code,
            use_multilevel_readout=self._use_multilevel,
            threshold_override=self._threshold_override,
        )
        table = SwapLookupTable(self.code, num_backups=self._num_backups)
        self._dli = DynamicLrcInsertion(table)
        self._last_assignment = {}

    def start_shot(self) -> None:
        if self._lsb is not None:
            self._lsb.reset()
        self._last_assignment = {}

    @property
    def speculation_block(self) -> LeakageSpeculationBlock:
        """The LSB instance (exposed for microarchitecture-level tests)."""
        return self._lsb

    def decide(
        self,
        round_index: int,
        detection_events: np.ndarray,
        syndrome: np.ndarray,
        readout_labels: np.ndarray,
        true_leaked_data: np.ndarray,
    ) -> Dict[int, int]:
        labels = readout_labels if self._use_multilevel else None
        candidates = self._lsb.observe_round(
            detection_events,
            previous_lrc_data_qubits=self._last_assignment.keys(),
            readout_labels=labels,
        )
        assignment = self._dli.assign(
            candidates, blocked_stabilizers=self._lsb.blocked_stabilizers()
        )
        self._lsb.commit_assignment(assignment)
        self._last_assignment = assignment
        return assignment


class EraserMPolicy(EraserPolicy):
    """ERASER+M: ERASER augmented with multi-level (|0>/|1>/|L>) readout."""

    name = "eraser+m"
    uses_multilevel_readout = True

    def __init__(self, num_backups: int = 1):
        super().__init__(num_backups=num_backups, use_multilevel_readout=True)
