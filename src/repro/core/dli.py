"""Dynamic LRC Insertion (DLI) and the SWAP Lookup Table.

Section 4.4 of the paper: once the Leakage Speculation Block has marked a set
of data qubits as (potentially) leaked, the DLI block must pair each of them
with a *unique*, *unused* parity qubit so that the corresponding LRC SWAPs can
all be executed in the next syndrome-extraction round.  The paper solves this
maximum-matching problem with a small lookup table that stores a primary and a
backup parity-qubit candidate per data qubit; this module reproduces that
design (with a configurable number of backups for ablation studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.codes.base import StabilizerCode


@dataclass
class SwapLookupTable:
    """Pre-computed primary/backup SWAP partners for every data qubit.

    The primary assignment is a maximum bipartite matching between data qubits
    and adjacent parity qubits, which is how Always-LRCs scheduling pairs each
    data qubit with a unique partner (Section 2.4).  The backup entries are the
    remaining adjacent parity qubits in a fixed order; by default only one
    backup is retained, matching the hardware design in the paper.

    Attributes:
        code: The surface code this table was built for.
        num_backups: Number of backup entries kept per data qubit (``None``
            keeps every adjacent parity qubit as a fallback).
        candidates: ``candidates[d]`` is the ordered tuple of stabilizer
            indices that data qubit ``d`` may swap with (primary first).
        unmatched_data_qubit: The single data qubit left without a unique
            primary partner (there are ``d*d`` data qubits but only
            ``d*d - 1`` parity qubits).
    """

    code: StabilizerCode
    num_backups: int = 1
    candidates: Dict[int, Tuple[int, ...]] = field(init=False)
    unmatched_data_qubit: int = field(init=False)

    def __post_init__(self) -> None:
        matching = self._primary_matching()
        unmatched = [q for q in self.code.data_indices if q not in matching]
        # Exactly one data qubit cannot receive a unique primary partner.
        self.unmatched_data_qubit = unmatched[0] if unmatched else -1
        candidates: Dict[int, Tuple[int, ...]] = {}
        for data_qubit in self.code.data_indices:
            neighbors = list(self.code.stabilizer_neighbors(data_qubit))
            primary = matching.get(data_qubit, neighbors[0])
            ordered = [primary] + [s for s in neighbors if s != primary]
            if self.num_backups is not None:
                ordered = ordered[: 1 + self.num_backups]
            candidates[data_qubit] = tuple(ordered)
        self.candidates = candidates

    def _primary_matching(self) -> Dict[int, int]:
        """Maximum bipartite matching: data qubit -> stabilizer index.

        Nodes are labelled with small integers (stabilizers offset past the
        data qubits) rather than ``("data", q)`` tuples: string hashing is
        randomised per process, and Hopcroft-Karp iterates over node sets, so
        string-bearing labels would make the matching — and with it every
        seeded experiment downstream — depend on ``PYTHONHASHSEED``.
        """
        offset = self.code.num_data_qubits
        graph = nx.Graph()
        data_nodes = list(self.code.data_indices)
        stab_nodes = [offset + s.index for s in self.code.stabilizers]
        graph.add_nodes_from(data_nodes, bipartite=0)
        graph.add_nodes_from(stab_nodes, bipartite=1)
        for data_qubit in self.code.data_indices:
            for stab in self.code.stabilizer_neighbors(data_qubit):
                graph.add_edge(data_qubit, offset + stab)
        raw = nx.bipartite.maximum_matching(graph, top_nodes=data_nodes)
        return {
            node: partner - offset
            for node, partner in raw.items()
            if node < offset
        }

    def primary(self, data_qubit: int) -> int:
        """Primary SWAP partner (stabilizer index) of a data qubit."""
        return self.candidates[data_qubit][0]

    def backups(self, data_qubit: int) -> Tuple[int, ...]:
        """Backup SWAP partners of a data qubit, in lookup order."""
        return self.candidates[data_qubit][1:]

    def primary_assignment(self, exclude_unmatched: bool = True) -> Dict[int, int]:
        """The Always-LRCs assignment: every matched data qubit to its primary."""
        assignment = {q: self.primary(q) for q in self.code.data_indices}
        if exclude_unmatched and self.unmatched_data_qubit >= 0:
            assignment.pop(self.unmatched_data_qubit, None)
        return assignment


@dataclass
class DynamicLrcInsertion:
    """Resolves LRC requests into a conflict-free assignment for the next round.

    Args:
        lookup_table: The SWAP Lookup Table to consult.
    """

    lookup_table: SwapLookupTable

    def assign(
        self,
        requests: Iterable[int],
        blocked_stabilizers: Iterable[int] = (),
    ) -> Dict[int, int]:
        """Pair requested data qubits with available parity qubits.

        Args:
            requests: Data qubits the LSB marked as (potentially) leaked.
            blocked_stabilizers: Stabilizers whose parity qubits are marked as
                used in the PUTT (they participated in an LRC last round and
                must be measured and reset before being reused).

        Returns:
            Mapping from data qubit to the stabilizer index whose parity qubit
            it will swap with.  Requests that cannot be satisfied (primary and
            all backups taken or blocked) are left out and should be retried by
            the caller in a later round.
        """
        taken: Set[int] = set(blocked_stabilizers)
        assignment: Dict[int, int] = {}
        for data_qubit in sorted(set(requests)):
            for stab in self.lookup_table.candidates[data_qubit]:
                if stab not in taken:
                    assignment[data_qubit] = stab
                    taken.add(stab)
                    break
        return assignment

    def max_schedulable(self, requests: Sequence[int]) -> int:
        """Upper bound on how many of the requests could ever be co-scheduled.

        Used by tests to check the greedy lookup-table heuristic against the
        true maximum matching.
        """
        offset = self.lookup_table.code.num_data_qubits
        graph = nx.Graph()
        for data_qubit in sorted(set(requests)):
            for stab in self.lookup_table.code.stabilizer_neighbors(data_qubit):
                graph.add_edge(data_qubit, offset + stab)
        if graph.number_of_edges() == 0:
            return 0
        matching = nx.bipartite.maximum_matching(
            graph,
            top_nodes=[n for n in graph.nodes if n < offset],
        )
        return sum(1 for node in matching if node < offset)
