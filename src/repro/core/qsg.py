"""QEC Schedule Generator (QSG).

Section 4.5 of the paper: the control processor repeatedly issues a compiled
syndrome-extraction round; when the DLI block decides that some data qubits
need LRCs, the QSG appends the extra SWAP CNOTs and redirects the measurement
of the affected parity checks onto the swapped data-side qubits.

This module builds concrete rounds as lists of vectorised circuit operations
(:mod:`repro.sim.circuit`) for three protocols:

* a plain syndrome extraction round,
* SWAP-based LRCs (the main text), and
* the DQLR LeakageISWAP protocol (Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.codes.base import StabilizerCode
from repro.codes.layout import StabilizerType
from repro.sim.circuit import (
    Cnot,
    Hadamard,
    LeakISwap,
    LrcFinalize,
    Measure,
    MeasureReset,
    Operation,
    Reset,
    RoundNoise,
)

#: Measurement-record keys used by every round built by the QSG.
KEY_MAIN_SYNDROME = "syndrome_main"
KEY_LRC_SYNDROME = "syndrome_lrc"
KEY_FINAL_DATA = "final_data"

#: LRC protocols supported by the schedule generator.
PROTOCOL_SWAP = "swap"
PROTOCOL_DQLR = "dqlr"


@dataclass
class RoundLayout:
    """Bookkeeping describing how one round's measurements map to stabilizers.

    Attributes:
        main_stabilizers: Stabilizer indices measured through the ordinary
            measure-and-reset of their own parity qubit.
        lrc_stabilizers: Stabilizer indices whose check was measured on the
            swapped data-side qubit (SWAP-LRC protocol only).
        lrc_data_qubits: Data qubits that received an LRC this round, aligned
            with ``lrc_stabilizers``.
        dqlr_data_qubits: Data qubits that received a DQLR LeakageISWAP this
            round (DQLR protocol only).
        assignment: The LRC assignment (data qubit -> stabilizer index) this
            round was built from.
    """

    main_stabilizers: Tuple[int, ...]
    lrc_stabilizers: Tuple[int, ...] = ()
    lrc_data_qubits: Tuple[int, ...] = ()
    dqlr_data_qubits: Tuple[int, ...] = ()
    assignment: Dict[int, int] = field(default_factory=dict)

    @property
    def num_lrcs(self) -> int:
        """Number of leakage-removal operations scheduled in this round."""
        return len(self.lrc_data_qubits) + len(self.dqlr_data_qubits)


class QecScheduleGenerator:
    """Builds syndrome-extraction rounds, optionally with leakage removal.

    Args:
        code: The stabilizer code to extract syndromes for (any
            :class:`~repro.codes.base.StabilizerCode` family).
        protocol: ``"swap"`` for SWAP LRCs (main text) or ``"dqlr"`` for the
            LeakageISWAP protocol of Appendix A.2.
        adaptive_multilevel: Apply the ERASER+M QSG modification (squash the
            swap-back and reset the parity qubit when the LRC measurement
            reports |L>); only meaningful for the SWAP protocol.
    """

    def __init__(
        self,
        code: StabilizerCode,
        protocol: str = PROTOCOL_SWAP,
        adaptive_multilevel: bool = False,
    ):
        if protocol not in (PROTOCOL_SWAP, PROTOCOL_DQLR):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.code = code
        self.protocol = protocol
        self.adaptive_multilevel = adaptive_multilevel
        self._data = np.asarray(code.data_indices, dtype=np.int64)
        self._x_ancillas = np.asarray(
            [s.ancilla for s in code.stabilizers if s.stype is StabilizerType.X],
            dtype=np.int64,
        )
        self._cnot_layers = self._build_cnot_layers()
        self._prefix_ops: List[Operation] = None

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    def _build_cnot_layers(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """The conflict-free CNOT layers of standard syndrome extraction.

        Up to four layers (the surface-code schedule slots); layers no
        stabilizer uses are dropped, so weight-two code families (e.g. the
        repetition code, which fills only the first two slots) do not emit
        empty operations.
        """
        layers: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in range(4):
            controls: List[int] = []
            targets: List[int] = []
            for stab in self.code.stabilizers:
                data_qubit = stab.schedule[layer]
                if data_qubit is None:
                    continue
                if stab.stype is StabilizerType.Z:
                    controls.append(data_qubit)
                    targets.append(stab.ancilla)
                else:
                    controls.append(stab.ancilla)
                    targets.append(data_qubit)
            if not controls:
                continue
            layers.append(
                (np.asarray(controls, dtype=np.int64), np.asarray(targets, dtype=np.int64))
            )
        return layers

    # ------------------------------------------------------------------
    # Round construction
    # ------------------------------------------------------------------
    def round_prefix(self) -> List[Operation]:
        """The assignment-independent head of every round.

        Start-of-round noise, the X-ancilla Hadamard sandwich, and the four
        CNOT extraction layers are identical for every round and every shot,
        so they are built once and shared; operations are immutable index
        arrays, which makes the sharing safe.  The batched experiment harness
        exploits this by executing the prefix over a whole batch at once even
        when the rounds' LRC tails differ per shot.
        """
        if self._prefix_ops is None:
            ops: List[Operation] = [RoundNoise(self._data)]
            if self._x_ancillas.size:
                ops.append(Hadamard(self._x_ancillas))
            for controls, targets in self._cnot_layers:
                ops.append(Cnot(controls, targets))
            if self._x_ancillas.size:
                ops.append(Hadamard(self._x_ancillas))
            self._prefix_ops = ops
        return self._prefix_ops

    def build_round(
        self, assignment: Dict[int, int] = None
    ) -> Tuple[List[Operation], RoundLayout]:
        """Build one syndrome-extraction round.

        Args:
            assignment: Mapping from data qubit to stabilizer index for the
                leakage-removal operations to insert this round.  ``None`` or
                an empty mapping yields a plain round.

        Returns:
            Tuple of the operation list and the :class:`RoundLayout` describing
            how measurement records map back to stabilizer indices.
        """
        tail, layout = self.build_round_tail(assignment)
        return list(self.round_prefix()) + tail, layout

    def build_round_tail(
        self, assignment: Dict[int, int] = None
    ) -> Tuple[List[Operation], RoundLayout]:
        """Build only the assignment-dependent tail of one round.

        The tail holds the LRC SWAPs (or DQLR LeakageISWAPs) and the
        measurement operations; prepend :meth:`round_prefix` to obtain the
        full round.
        """
        assignment = dict(assignment or {})
        self._validate_assignment(assignment)
        ops: List[Operation] = []
        if self.protocol == PROTOCOL_SWAP:
            layout = self._finish_swap_round(ops, assignment)
        else:
            layout = self._finish_dqlr_round(ops, assignment)
        return ops, layout

    def _validate_assignment(self, assignment: Dict[int, int]) -> None:
        stabs = list(assignment.values())
        if len(set(stabs)) != len(stabs):
            raise ValueError("LRC assignment reuses a parity qubit within one round")
        for data_qubit, stab in assignment.items():
            if stab not in self.code.stabilizer_neighbors(data_qubit):
                raise ValueError(
                    f"data qubit {data_qubit} is not adjacent to stabilizer {stab}"
                )

    def _finish_swap_round(
        self, ops: List[Operation], assignment: Dict[int, int]
    ) -> RoundLayout:
        lrc_data = np.asarray(sorted(assignment), dtype=np.int64)
        lrc_stabs = np.asarray([assignment[q] for q in lrc_data], dtype=np.int64)
        lrc_ancillas = np.asarray(
            [self.code.ancilla_of(int(s)) for s in lrc_stabs], dtype=np.int64
        )
        main_stabs = np.asarray(
            [s.index for s in self.code.stabilizers if s.index not in set(assignment.values())],
            dtype=np.int64,
        )
        main_ancillas = np.asarray(
            [self.code.ancilla_of(int(s)) for s in main_stabs], dtype=np.int64
        )

        if lrc_data.size:
            # SWAP(D, A) decomposed as three CNOT layers over disjoint pairs.
            ops.append(Cnot(lrc_data, lrc_ancillas))
            ops.append(Cnot(lrc_ancillas, lrc_data))
            ops.append(Cnot(lrc_data, lrc_ancillas))
        ops.append(
            MeasureReset(main_ancillas, KEY_MAIN_SYNDROME, meta=tuple(int(s) for s in main_stabs))
        )
        if lrc_data.size:
            ops.append(
                LrcFinalize(
                    lrc_data,
                    lrc_ancillas,
                    KEY_LRC_SYNDROME,
                    meta=tuple(int(s) for s in lrc_stabs),
                    adaptive_multilevel=self.adaptive_multilevel,
                )
            )
        return RoundLayout(
            main_stabilizers=tuple(int(s) for s in main_stabs),
            lrc_stabilizers=tuple(int(s) for s in lrc_stabs),
            lrc_data_qubits=tuple(int(q) for q in lrc_data),
            assignment=assignment,
        )

    def _finish_dqlr_round(
        self, ops: List[Operation], assignment: Dict[int, int]
    ) -> RoundLayout:
        all_stabs = tuple(range(self.code.num_stabilizers))
        all_ancillas = np.asarray(
            [self.code.ancilla_of(s) for s in all_stabs], dtype=np.int64
        )
        ops.append(MeasureReset(all_ancillas, KEY_MAIN_SYNDROME, meta=all_stabs))
        dqlr_data = np.asarray(sorted(assignment), dtype=np.int64)
        if dqlr_data.size:
            dqlr_ancillas = np.asarray(
                [self.code.ancilla_of(assignment[int(q)]) for q in dqlr_data],
                dtype=np.int64,
            )
            ops.append(LeakISwap(dqlr_data, dqlr_ancillas))
            ops.append(Reset(dqlr_ancillas))
        return RoundLayout(
            main_stabilizers=all_stabs,
            dqlr_data_qubits=tuple(int(q) for q in dqlr_data),
            assignment=assignment,
        )

    def build_final_data_measurement(self) -> List[Operation]:
        """Terminal transversal measurement of every data qubit."""
        return [Measure(self._data, KEY_FINAL_DATA, meta=tuple(self.code.data_indices))]

    # ------------------------------------------------------------------
    # Result assembly helpers
    # ------------------------------------------------------------------
    def assemble_syndrome(
        self, records: Dict[str, "MeasurementRecord"], layout: RoundLayout
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Combine per-key measurement records into per-stabilizer arrays.

        Returns:
            Tuple ``(bits, labels, ancilla_leaked)`` indexed by stabilizer.
            ``ancilla_leaked`` reports the ground-truth leakage of the physical
            qubit that produced each check (used only for metrics).
        """
        n = self.code.num_stabilizers
        bits = np.zeros(n, dtype=np.uint8)
        labels = np.zeros(n, dtype=np.uint8)
        leaked = np.zeros(n, dtype=bool)
        for key in (KEY_MAIN_SYNDROME, KEY_LRC_SYNDROME):
            record = records.get(key)
            if record is None:
                continue
            stab_indices = np.asarray(record.meta, dtype=np.int64)
            bits[stab_indices] = record.bits
            labels[stab_indices] = record.labels
            leaked[stab_indices] = record.true_leaked
        return bits, labels, leaked
