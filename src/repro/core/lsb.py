"""Leakage Speculation Block (LSB).

Section 4.2 of the paper: the LSB consumes the current syndrome (one bit per
parity check, already differenced against the previous round so that a set bit
means "this check flipped") and speculates which data qubits may have leaked.

The speculation rule is deliberately simple so that it fits on an FPGA with a
few-nanosecond latency:

* a data qubit is marked as leaked in the Leakage Tracking Table (LTT) when at
  least half of its neighbouring parity checks flipped in the current round,
  unless an LRC was already applied to it in the previous round (in which case
  any leakage would have just been removed);
* ERASER+M additionally marks every data qubit adjacent to a parity qubit
  whose multi-level readout reported |L>.

The Parity-qubit Usage Tracking Table (PUTT) remembers which parity qubits
participated in LRC SWAPs last round; those qubits have not been reset and may
have accumulated leakage, so they are not eligible to serve another LRC until
they have gone through a normal measure-and-reset round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

import numpy as np

from repro.codes.base import StabilizerCode


class LeakageTrackingTable:
    """One speculative "leaked" bit per data qubit (the LTT)."""

    def __init__(self, num_data_qubits: int):
        self._flags = np.zeros(num_data_qubits, dtype=bool)

    def mark(self, data_qubit: int) -> None:
        self._flags[data_qubit] = True

    def clear(self, data_qubit: int) -> None:
        self._flags[data_qubit] = False

    def clear_all(self) -> None:
        self._flags[:] = False

    def is_marked(self, data_qubit: int) -> bool:
        return bool(self._flags[data_qubit])

    def marked_qubits(self) -> List[int]:
        return [int(q) for q in np.flatnonzero(self._flags)]

    def __len__(self) -> int:
        return int(self._flags.sum())


class ParityUsageTrackingTable:
    """One "used for an LRC last round" bit per parity qubit (the PUTT)."""

    def __init__(self, num_stabilizers: int):
        self._used = np.zeros(num_stabilizers, dtype=bool)

    def record_round(self, stabilizers_used: Iterable[int]) -> None:
        """Replace the table contents with the stabilizers used this round."""
        self._used[:] = False
        for stab in stabilizers_used:
            self._used[stab] = True

    def is_used(self, stabilizer: int) -> bool:
        return bool(self._used[stabilizer])

    def used_stabilizers(self) -> List[int]:
        return [int(s) for s in np.flatnonzero(self._used)]

    def clear(self) -> None:
        self._used[:] = False


def speculation_threshold(num_neighbors: int) -> int:
    """Minimum number of flipped neighbouring checks that triggers speculation.

    The paper uses "at least half of the neighbouring parity qubits"; data
    qubits on the rotated surface code have two, three, or four neighbours, so
    the thresholds are 1, 2, and 2 respectively.
    """
    if num_neighbors <= 0:
        raise ValueError("a data qubit must have at least one neighbour")
    return math.ceil(num_neighbors / 2)


@dataclass
class LeakageSpeculationBlock:
    """The LSB: syndrome-pattern based leakage speculation.

    Args:
        code: The surface code being protected.
        use_multilevel_readout: Enable the ERASER+M enhancement that marks
            data qubits adjacent to parity qubits measured in |L>.
        leaked_label: Discriminator label that denotes |L>.
        threshold_override: Use a fixed flip-count trigger instead of the
            paper's "at least half of the neighbours" rule (clamped to each
            qubit's neighbour count).  Used by the speculation-aggressiveness
            ablation; ``None`` keeps the paper's rule.
    """

    code: StabilizerCode
    use_multilevel_readout: bool = False
    leaked_label: int = 2
    threshold_override: int = None
    ltt: LeakageTrackingTable = field(init=False)
    putt: ParityUsageTrackingTable = field(init=False)

    def __post_init__(self) -> None:
        self.ltt = LeakageTrackingTable(self.code.num_data_qubits)
        self.putt = ParityUsageTrackingTable(self.code.num_stabilizers)
        self._neighbors = [
            np.asarray(self.code.stabilizer_neighbors(q), dtype=np.int64)
            for q in self.code.data_indices
        ]
        if self.threshold_override is None:
            thresholds = [speculation_threshold(len(n)) for n in self._neighbors]
        else:
            if self.threshold_override < 1:
                raise ValueError("threshold_override must be at least 1")
            thresholds = [
                min(self.threshold_override, len(n)) for n in self._neighbors
            ]
        self._thresholds = np.array(thresholds, dtype=np.int64)

    def reset(self) -> None:
        """Clear all speculative state (start of a new experiment)."""
        self.ltt.clear_all()
        self.putt.clear()

    def observe_round(
        self,
        detection_events: np.ndarray,
        previous_lrc_data_qubits: Iterable[int],
        readout_labels: np.ndarray = None,
    ) -> List[int]:
        """Update the LTT from the current syndrome and return LRC candidates.

        Args:
            detection_events: Boolean array over stabilizer indices; True means
                the parity check flipped relative to the previous round.
            previous_lrc_data_qubits: Data qubits whose LRC executed in the
                round that produced this syndrome (their leakage was just
                removed, so they are not speculated on and their LTT entry is
                cleared).
            readout_labels: Multi-level discriminator labels per stabilizer
                measurement; only consulted when ``use_multilevel_readout`` is
                enabled.

        Returns:
            Sorted list of data qubits currently marked as leaked in the LTT.
        """
        events = np.asarray(detection_events, dtype=bool)
        had_lrc = set(previous_lrc_data_qubits)
        for data_qubit in had_lrc:
            self.ltt.clear(data_qubit)
        for data_qubit in self.code.data_indices:
            if data_qubit in had_lrc:
                continue
            neighbors = self._neighbors[data_qubit]
            flips = int(events[neighbors].sum())
            if flips >= self._thresholds[data_qubit]:
                self.ltt.mark(data_qubit)
        if self.use_multilevel_readout and readout_labels is not None:
            labels = np.asarray(readout_labels)
            for stab_index in np.flatnonzero(labels == self.leaked_label):
                for data_qubit in self.code.stabilizers[int(stab_index)].data_qubits:
                    if data_qubit not in had_lrc:
                        self.ltt.mark(data_qubit)
        return sorted(self.ltt.marked_qubits())

    def commit_assignment(self, assignment: Dict[int, int]) -> None:
        """Record a finalized LRC assignment for the next round.

        Assigned data qubits are removed from the LTT (their leakage is about
        to be cleaned); the parity qubits they borrow are marked as used in the
        PUTT so they are not reused before being reset.
        """
        for data_qubit in assignment:
            self.ltt.clear(data_qubit)
        self.putt.record_round(assignment.values())

    def blocked_stabilizers(self) -> List[int]:
        """Stabilizers whose parity qubits are unavailable for the next round."""
        return self.putt.used_stabilizers()
