"""The paper's primary contribution: adaptive LRC scheduling (ERASER).

This subpackage implements the ERASER microarchitecture described in
Section 4 of the paper:

* :mod:`repro.core.lsb` — the Leakage Speculation Block with its Leakage
  Tracking Table (LTT) and Parity-qubit Usage Tracking Table (PUTT),
* :mod:`repro.core.dli` — Dynamic LRC Insertion with the SWAP Lookup Table,
* :mod:`repro.core.qsg` — the QEC Schedule Generator that turns LRC
  assignments into concrete syndrome-extraction rounds,
* :mod:`repro.core.policies` — the five LRC scheduling policies evaluated in
  the paper (No-LRC, Always-LRCs, Optimal, ERASER, ERASER+M).
"""

from repro.core.dli import DynamicLrcInsertion, SwapLookupTable
from repro.core.lsb import (
    LeakageSpeculationBlock,
    LeakageTrackingTable,
    ParityUsageTrackingTable,
)
from repro.core.qsg import QecScheduleGenerator, RoundLayout
from repro.core.policies import (
    AlwaysLrcPolicy,
    EraserMPolicy,
    EraserPolicy,
    LrcPolicy,
    NoLrcPolicy,
    OptimalLrcPolicy,
    make_policy,
)

__all__ = [
    "SwapLookupTable",
    "DynamicLrcInsertion",
    "LeakageTrackingTable",
    "ParityUsageTrackingTable",
    "LeakageSpeculationBlock",
    "QecScheduleGenerator",
    "RoundLayout",
    "LrcPolicy",
    "NoLrcPolicy",
    "AlwaysLrcPolicy",
    "OptimalLrcPolicy",
    "EraserPolicy",
    "EraserMPolicy",
    "make_policy",
]
